//! Typed failures for the PS client and the async push server, plus the
//! retry policy the client wraps around a fault injector.
//!
//! Without a fault injector attached every [`PsClient`](crate::PsClient)
//! call is infallible (the store is in-process memory); these types only
//! surface once simulated faults are in play — or, for [`ServerGone`], when
//! the [`AsyncServer`](crate::AsyncServer) consumer thread has died.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A PS RPC that failed after exhausting its retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcError {
    /// The message was dropped on every attempt.
    Dropped {
        /// Send attempts made before giving up.
        attempts: u32,
    },
    /// The target shard stayed unreachable across all attempts.
    ShardUnavailable {
        /// The shard that refused the message.
        shard: usize,
        /// Send attempts made before giving up.
        attempts: u32,
    },
    /// Every attempt arrived with a payload that failed its wire-frame
    /// checksum (the garbage was rejected, never ingested).
    CorruptPayload {
        /// Send attempts made before giving up.
        attempts: u32,
    },
    /// The target shard's primary is permanently dead and no backup replica
    /// was available to promote (replication off, or the replica budget for
    /// this shard is already spent).
    ShardLost {
        /// The shard whose primary died beyond recovery.
        shard: usize,
    },
    /// The target shard is overloaded and the run-global retry budget (or
    /// the shard's circuit breaker) refused to keep retrying. The operation
    /// was shed so the caller can degrade — brownout-stale serves for
    /// pulls, the deferred-push backlog for pushes — instead of adding
    /// retry load to a drowning shard.
    Overloaded {
        /// The saturated shard.
        shard: usize,
        /// Send attempts made before the budget/breaker cut the loop.
        attempts: u32,
    },
    /// The async push server's consumer thread is gone.
    ServerGone,
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Dropped { attempts } => {
                write!(f, "message dropped on all {attempts} attempts")
            }
            RpcError::ShardUnavailable { shard, attempts } => {
                write!(f, "shard {shard} unavailable after {attempts} attempts")
            }
            RpcError::CorruptPayload { attempts } => {
                write!(f, "payload failed its checksum on all {attempts} attempts")
            }
            RpcError::ShardLost { shard } => {
                write!(f, "shard {shard} lost: primary dead, no backup to promote")
            }
            RpcError::Overloaded { shard, attempts } => {
                write!(
                    f,
                    "shard {shard} overloaded after {attempts} attempts: retry budget dry, degrade instead"
                )
            }
            RpcError::ServerGone => write!(f, "ps server thread is gone"),
        }
    }
}

impl std::error::Error for RpcError {}

impl From<ServerGone> for RpcError {
    fn from(_: ServerGone) -> Self {
        RpcError::ServerGone
    }
}

/// The async push server's consumer thread has exited (store panic or
/// earlier shutdown); the queued operation was not applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerGone;

impl fmt::Display for ServerGone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ps server thread is gone")
    }
}

impl std::error::Error for ServerGone {}

/// Bounded retries with exponential backoff and seeded jitter, all in
/// simulated time.
///
/// On a [`Verdict::Drop`](hetkg_netsim::Verdict::Drop) the client backs off
/// `base_backoff * 2^(attempt-1)` (capped at `max_backoff`, jittered by
/// ±`jitter`/2) and retransmits. On `ShardDown`, `wait_for_recovery` makes
/// the client sleep (in simulated time) until the outage window ends before
/// retrying — the behavior of a blocking KVStore client with no failover —
/// which also guarantees retry loops terminate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum send attempts per message (initial send included).
    pub max_attempts: u32,
    /// First backoff, in simulated seconds.
    pub base_backoff: f64,
    /// Backoff ceiling, in simulated seconds.
    pub max_backoff: f64,
    /// Jitter fraction: each backoff is scaled by `1 ± jitter/2`.
    pub jitter: f64,
    /// Whether to sleep out a shard outage instead of burning attempts.
    pub wait_for_recovery: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            base_backoff: 100e-6,
            max_backoff: 10e-3,
            jitter: 0.5,
            wait_for_recovery: true,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based), using a uniform
    /// `[0, 1)` `jitter_draw` from the worker's seeded RNG stream.
    ///
    /// The doubling exponent is clamped (so huge attempt counts cannot
    /// overflow to `inf`) and the result is capped at the configurable
    /// `max_backoff` ceiling *after* jitter as well: even a pathological
    /// policy (`base_backoff = f64::MAX`) yields a finite, bounded wait.
    /// For every sane policy (`jitter <= 1`) the post-jitter cap is
    /// mathematically inactive — jitter scales by at most `1 + jitter/2`,
    /// and the cap sits at `max_backoff * (1 + jitter)` — so existing
    /// deterministic backoff timings are preserved bit for bit.
    pub fn backoff(&self, attempt: u32, jitter_draw: f64) -> f64 {
        let exp = self.base_backoff * 2f64.powi(attempt.saturating_sub(1).min(30) as i32);
        let jittered = exp.min(self.max_backoff) * (1.0 + self.jitter * (jitter_draw - 0.5));
        let ceiling = self.max_backoff * (1.0 + self.jitter.abs());
        if jittered.is_finite() && ceiling.is_finite() {
            jittered.min(ceiling)
        } else {
            // Non-finite intermediate (overflowing base/max/jitter): fall
            // back to the largest finite expressible ceiling.
            self.max_backoff.min(f64::MAX)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_until_capped() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let b1 = p.backoff(1, 0.5);
        let b2 = p.backoff(2, 0.5);
        let b3 = p.backoff(3, 0.5);
        assert!((b2 - 2.0 * b1).abs() < 1e-12);
        assert!((b3 - 4.0 * b1).abs() < 1e-12);
        let huge = p.backoff(30, 0.5);
        assert!(
            (huge - p.max_backoff).abs() < 1e-12,
            "capped at max_backoff"
        );
    }

    #[test]
    fn jitter_scales_around_the_midpoint() {
        let p = RetryPolicy {
            jitter: 0.5,
            ..RetryPolicy::default()
        };
        let low = p.backoff(1, 0.0);
        let mid = p.backoff(1, 0.5);
        let high = p.backoff(1, 1.0 - 1e-9);
        assert!(low < mid && mid < high);
        assert!((mid - p.base_backoff).abs() < 1e-12);
        assert!(low >= 0.75 * p.base_backoff - 1e-12);
        assert!(high <= 1.25 * p.base_backoff + 1e-12);
    }

    #[test]
    fn errors_format_actionably() {
        assert_eq!(
            RpcError::Dropped { attempts: 8 }.to_string(),
            "message dropped on all 8 attempts"
        );
        assert_eq!(
            RpcError::ShardUnavailable {
                shard: 2,
                attempts: 3
            }
            .to_string(),
            "shard 2 unavailable after 3 attempts"
        );
        assert_eq!(
            RpcError::ShardLost { shard: 1 }.to_string(),
            "shard 1 lost: primary dead, no backup to promote"
        );
        assert_eq!(RpcError::from(ServerGone), RpcError::ServerGone);
        assert_eq!(ServerGone.to_string(), "ps server thread is gone");
    }

    #[test]
    fn giant_attempt_counts_do_not_overflow() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let b = p.backoff(u32::MAX, 0.5);
        assert!(b.is_finite());
        assert!((b - p.max_backoff).abs() < 1e-12);
    }

    #[test]
    fn pathological_policies_stay_finite() {
        // An overflowing base cannot escape the configurable ceiling…
        let p = RetryPolicy {
            base_backoff: f64::MAX,
            max_backoff: 10e-3,
            jitter: 0.5,
            ..RetryPolicy::default()
        };
        for attempt in [1, 2, 31, 1_000, u32::MAX] {
            for draw in [0.0, 0.5, 0.999_999] {
                let b = p.backoff(attempt, draw);
                assert!(b.is_finite(), "attempt {attempt}, draw {draw}: {b}");
                assert!(b <= p.max_backoff * 1.5 + 1e-12);
            }
        }
        // …and even an overflowing ceiling degrades to a finite wait.
        let p = RetryPolicy {
            base_backoff: f64::MAX,
            max_backoff: f64::MAX,
            jitter: 1.0,
            ..RetryPolicy::default()
        };
        assert!(p.backoff(u32::MAX, 0.999).is_finite());
    }

    #[test]
    fn overloaded_error_formats_actionably() {
        assert_eq!(
            RpcError::Overloaded {
                shard: 1,
                attempts: 4
            }
            .to_string(),
            "shard 1 overloaded after 4 attempts: retry budget dry, degrade instead"
        );
    }
}

//! The worker-side PS handle: routed, *metered* push/pull.
//!
//! This is where `localPull`/`localPush` vs `remotePull`/`remotePush` (§V)
//! are distinguished: a key whose shard is co-located with the calling
//! worker's machine is shared-memory traffic; every other key crosses the
//! simulated network. Batched operations send **one message per shard
//! touched per direction**, matching how a real KVStore client coalesces a
//! mini-batch's keys.

use crate::kvstore::KvStore;
use crate::optimizer::Optimizer;
use hetkg_kgraph::ParamKey;
use hetkg_netsim::{ClusterTopology, TrafficMeter};
use std::sync::Arc;

/// Bytes accounted per key id shipped in a request (u64 on the wire).
const KEY_BYTES: u64 = 8;

/// A worker's connection to the parameter server.
#[derive(Debug, Clone)]
pub struct PsClient {
    worker_id: usize,
    topology: ClusterTopology,
    store: Arc<KvStore>,
    meter: Arc<TrafficMeter>,
}

impl PsClient {
    /// Client for `worker_id` under the given topology, reporting traffic to
    /// `meter`.
    pub fn new(
        worker_id: usize,
        topology: ClusterTopology,
        store: Arc<KvStore>,
        meter: Arc<TrafficMeter>,
    ) -> Self {
        assert!(worker_id < topology.num_workers(), "worker id out of range");
        assert_eq!(
            topology.num_machines(),
            store.router().num_shards(),
            "one PS shard per machine"
        );
        Self { worker_id, topology, store, meter }
    }

    /// The underlying store (for evaluation snapshots).
    pub fn store(&self) -> &Arc<KvStore> {
        &self.store
    }

    /// This client's worker id.
    pub fn worker_id(&self) -> usize {
        self.worker_id
    }

    /// Whether `key` is served from this worker's machine.
    #[inline]
    pub fn is_local(&self, key: ParamKey) -> bool {
        self.topology.is_local(self.worker_id, self.store.router().shard_of(key))
    }

    /// Pull one key (one message).
    pub fn pull(&self, key: ParamKey, out: &mut [f32]) {
        self.store.pull(key, out);
        let bytes = self.store.row_bytes(key) + KEY_BYTES;
        if self.is_local(key) {
            self.meter.record_local(bytes);
        } else {
            self.meter.record_remote(bytes);
        }
    }

    /// Pull many keys; `sink(i, row)` receives each key's row in order.
    ///
    /// Metering: requested keys are grouped by shard; each touched shard
    /// costs one message carrying its keys' ids plus the returned rows.
    pub fn pull_batch(&self, keys: &[ParamKey], mut sink: impl FnMut(usize, &[f32])) {
        if keys.is_empty() {
            return;
        }
        let num_shards = self.store.router().num_shards();
        let mut shard_bytes = vec![0u64; num_shards];
        let max_dim = self.store.entity_dim().max(self.store.relation_dim());
        let mut buf = vec![0.0f32; max_dim];
        for (i, &key) in keys.iter().enumerate() {
            let width = (self.store.row_bytes(key) / 4) as usize;
            self.store.pull(key, &mut buf[..width]);
            sink(i, &buf[..width]);
            shard_bytes[self.store.router().shard_of(key)] +=
                self.store.row_bytes(key) + KEY_BYTES;
        }
        self.meter_shards(&shard_bytes);
    }

    /// Push one gradient (one message); the server applies `optimizer`.
    pub fn push(&self, key: ParamKey, grad: &[f32], optimizer: &dyn Optimizer) {
        self.store.push_grad(key, grad, optimizer);
        let bytes = self.store.row_bytes(key) + KEY_BYTES;
        if self.is_local(key) {
            self.meter.record_local(bytes);
        } else {
            self.meter.record_remote(bytes);
        }
    }

    /// Push many gradients, one message per shard touched.
    ///
    /// `grads[i]` is the gradient for `keys[i]`.
    pub fn push_batch(&self, keys: &[ParamKey], grads: &[&[f32]], optimizer: &dyn Optimizer) {
        assert_eq!(keys.len(), grads.len(), "one gradient per key");
        if keys.is_empty() {
            return;
        }
        let num_shards = self.store.router().num_shards();
        let mut shard_bytes = vec![0u64; num_shards];
        for (&key, &grad) in keys.iter().zip(grads) {
            self.store.push_grad(key, grad, optimizer);
            shard_bytes[self.store.router().shard_of(key)] +=
                self.store.row_bytes(key) + KEY_BYTES;
        }
        self.meter_shards(&shard_bytes);
    }

    /// Overwrite many keys' values (no optimizer), one message per shard
    /// touched. Used by block-partitioned training (PBG) to save entity
    /// partitions back to shared storage.
    pub fn write_batch(&self, keys: &[ParamKey], values: &[&[f32]]) {
        assert_eq!(keys.len(), values.len(), "one value per key");
        if keys.is_empty() {
            return;
        }
        let num_shards = self.store.router().num_shards();
        let mut shard_bytes = vec![0u64; num_shards];
        for (&key, &value) in keys.iter().zip(values) {
            self.store.store(key, value);
            shard_bytes[self.store.router().shard_of(key)] +=
                self.store.row_bytes(key) + KEY_BYTES;
        }
        self.meter_shards(&shard_bytes);
    }

    /// Record one message per shard with accumulated bytes.
    fn meter_shards(&self, shard_bytes: &[u64]) {
        for (shard, &bytes) in shard_bytes.iter().enumerate() {
            if bytes == 0 {
                continue;
            }
            if self.topology.is_local(self.worker_id, shard) {
                self.meter.record_local(bytes);
            } else {
                self.meter.record_remote(bytes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Sgd;
    use crate::router::ShardRouter;
    use hetkg_embed::init::Init;
    use hetkg_kgraph::KeySpace;

    fn setup(machines: usize) -> (Arc<KvStore>, ClusterTopology) {
        let ks = KeySpace::new(8, 4);
        let router = ShardRouter::round_robin(ks, machines);
        let store =
            Arc::new(KvStore::new(router, 4, 4, 0, Init::Uniform { bound: 0.1 }, 1));
        (store, ClusterTopology::new(machines, 1))
    }

    #[test]
    fn local_and_remote_are_metered_separately() {
        let (store, topo) = setup(2);
        let meter = Arc::new(TrafficMeter::new());
        let client = PsClient::new(0, topo, store, meter.clone());
        let mut buf = [0.0f32; 4];
        // Entity key 0 -> shard 0 (round robin): local for worker 0.
        client.pull(ParamKey(0), &mut buf);
        // Entity key 1 -> shard 1: remote.
        client.pull(ParamKey(1), &mut buf);
        let s = meter.snapshot();
        assert_eq!(s.local_messages, 1);
        assert_eq!(s.remote_messages, 1);
        assert_eq!(s.local_bytes, 16 + 8);
        assert_eq!(s.remote_bytes, 16 + 8);
    }

    #[test]
    fn batch_pull_coalesces_messages_per_shard() {
        let (store, topo) = setup(2);
        let meter = Arc::new(TrafficMeter::new());
        let client = PsClient::new(0, topo, store, meter.clone());
        // Keys 0,2,4,6 on shard 0 (local), 1,3,5 on shard 1 (remote).
        let keys: Vec<ParamKey> = (0..7).map(ParamKey).collect();
        let mut rows = 0;
        client.pull_batch(&keys, |_, row| {
            assert_eq!(row.len(), 4);
            rows += 1;
        });
        assert_eq!(rows, 7);
        let s = meter.snapshot();
        assert_eq!(s.local_messages, 1, "one coalesced local message");
        assert_eq!(s.remote_messages, 1, "one coalesced remote message");
        assert_eq!(s.local_bytes, 4 * (16 + 8));
        assert_eq!(s.remote_bytes, 3 * (16 + 8));
    }

    #[test]
    fn push_updates_the_store() {
        let (store, topo) = setup(1);
        let meter = Arc::new(TrafficMeter::new());
        let client = PsClient::new(0, topo, store.clone(), meter);
        store.store(ParamKey(0), &[1.0; 4]);
        client.push(ParamKey(0), &[1.0; 4], &Sgd { lr: 0.5 });
        let mut buf = [0.0f32; 4];
        store.pull(ParamKey(0), &mut buf);
        assert!((buf[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn push_batch_applies_all_and_meters_once_per_shard() {
        let (store, topo) = setup(2);
        let meter = Arc::new(TrafficMeter::new());
        let client = PsClient::new(1, topo, store.clone(), meter.clone());
        store.store(ParamKey(0), &[0.0; 4]);
        store.store(ParamKey(1), &[0.0; 4]);
        let g = [1.0f32; 4];
        client.push_batch(&[ParamKey(0), ParamKey(1)], &[&g, &g], &Sgd { lr: 1.0 });
        let mut buf = [0.0f32; 4];
        store.pull(ParamKey(0), &mut buf);
        assert!((buf[0] + 1.0).abs() < 1e-6);
        let s = meter.snapshot();
        // Worker 1 is on machine 1: key 1 local, key 0 remote.
        assert_eq!(s.local_messages, 1);
        assert_eq!(s.remote_messages, 1);
    }

    #[test]
    fn empty_batches_cost_nothing() {
        let (store, topo) = setup(2);
        let meter = Arc::new(TrafficMeter::new());
        let client = PsClient::new(0, topo, store, meter.clone());
        client.pull_batch(&[], |_, _| panic!("no rows expected"));
        client.push_batch(&[], &[], &Sgd { lr: 1.0 });
        assert_eq!(meter.snapshot().total_bytes(), 0);
    }

    #[test]
    fn single_machine_everything_is_local() {
        let (store, topo) = setup(1);
        let meter = Arc::new(TrafficMeter::new());
        let client = PsClient::new(0, topo, store, meter.clone());
        let keys: Vec<ParamKey> = (0..12).map(ParamKey).collect();
        client.pull_batch(&keys, |_, _| {});
        let s = meter.snapshot();
        assert_eq!(s.remote_bytes, 0);
        assert!(s.local_bytes > 0);
    }
}

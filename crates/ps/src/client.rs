//! The worker-side PS handle: routed, *metered* push/pull.
//!
//! This is where `localPull`/`localPush` vs `remotePull`/`remotePush` (§V)
//! are distinguished: a key whose shard is co-located with the calling
//! worker's machine is shared-memory traffic; every other key crosses the
//! simulated network. Batched operations send **one message per shard
//! touched per direction**, matching how a real KVStore client coalesces a
//! mini-batch's keys.
//!
//! # Fault handling
//!
//! By default every call is infallible (the store is in-process memory).
//! Attaching a [`FaultInjector`] via [`PsClient::with_faults`] routes every
//! message through fault adjudication: drops are retransmitted under the
//! [`RetryPolicy`] (exponential backoff, seeded jitter), shard outages are
//! either waited out in simulated time or surfaced as
//! [`RpcError::ShardUnavailable`]. Every transmission attempt — including
//! retransmissions of dropped messages — is metered, so simulated network
//! time reflects the true cost of the faults. The `try_*` methods expose
//! the fallible path; the legacy infallible methods delegate to them and
//! panic only if the retry budget is exhausted. With a zero-fault plan
//! attached, traffic is byte-identical to running with no injector at all.
//!
//! # Wire integrity
//!
//! Every message is modeled as a checksummed [`WireFrame`] (key ids +
//! payload, sealed with FNV-1a at send time). Under a fault plan with
//! `corrupt_probability > 0` a delivered frame may arrive with a flipped
//! payload bit: with checksums on (the default) the client detects the
//! mismatch, counts it, and re-pulls under the same [`RetryPolicy`] —
//! garbage never reaches the table; with [`PsClient::with_checksums`]
//! `(false)` the damaged payload is ingested and counted, which is how the
//! divergence oracle demonstrates what the integrity layer prevents. The
//! 4-byte digest rides in the per-message envelope overhead already priced
//! by the cost model, so checksums change no metered byte counts.

use crate::compress::PushCompressor;
use crate::error::{RetryPolicy, RpcError};
use crate::kvstore::KvStore;
use crate::optimizer::Optimizer;
use crate::overload::{Gate, OverloadControl, ShardBreakers};
use crate::router::BatchPlan;
use crate::transport::{FrameOp, SimTransport, Transport};
use hetkg_kgraph::ParamKey;
use hetkg_netsim::compress::encoded_len;
use hetkg_netsim::{
    ClusterTopology, Codec, CompressionMode, CompressionStats, FaultInjector, TrafficMeter,
    TrafficSnapshot, Verdict, WireFrame,
};
use parking_lot::Mutex;
use std::sync::Arc;

/// Bytes accounted per key id shipped in a request (u64 on the wire).
const KEY_BYTES: u64 = 8;

/// Hedged pulls fire when a delivery's latency inflation (observed time over
/// the cost model's base time) exceeds `HEDGE_MIN_RATIO` and
/// `HEDGE_EWMA_SLACK ×` the client's running average — adaptive, so a
/// sustained episode stops triggering hedges once the average catches up.
const HEDGE_MIN_RATIO: f64 = 2.0;
const HEDGE_EWMA_SLACK: f64 = 1.5;
/// EWMA smoothing for the observed inflation ratio.
const HEDGE_EWMA_ALPHA: f64 = 0.2;

/// Running latency-inflation tracker backing the adaptive hedge threshold.
#[derive(Debug, Default)]
struct HedgeState {
    ewma: f64,
    primed: bool,
}

impl HedgeState {
    /// Inflation ratio above which the next pull is hedged. Infinite until
    /// the first observation lands (never hedge blind).
    fn threshold(&self) -> f64 {
        if self.primed {
            (HEDGE_EWMA_SLACK * self.ewma).max(HEDGE_MIN_RATIO)
        } else {
            f64::INFINITY
        }
    }

    fn observe(&mut self, ratio: f64) {
        // A zero-duration baseline (cost model says the pull was free)
        // makes the inflation ratio inf or NaN. Folding either into the
        // EWMA poisons it permanently — inf disables hedging forever, NaN
        // force-triggers or disables it depending on comparison direction —
        // so non-finite observations are discarded, not smoothed.
        if !ratio.is_finite() {
            return;
        }
        if self.primed {
            self.ewma = (1.0 - HEDGE_EWMA_ALPHA) * self.ewma + HEDGE_EWMA_ALPHA * ratio;
        } else {
            self.ewma = ratio;
            self.primed = true;
        }
    }
}

/// A fault injector plus the retry policy governing this client's responses
/// to its verdicts.
#[derive(Debug, Clone)]
pub struct FaultBinding {
    /// The per-worker adjudicator (shared with the trainer for reporting).
    pub injector: Arc<FaultInjector>,
    /// How this client retries dropped messages and down shards.
    pub policy: RetryPolicy,
}

/// Where one key's row lives inside its shard frame's payload.
#[derive(Debug, Clone, Copy, Default)]
struct FrameSlot {
    shard: usize,
    offset: usize,
    width: usize,
}

/// Reusable scratch for the client's batched operations.
///
/// The `*_batch_with` methods resolve placements into a [`BatchPlan`], build
/// one frame per shard out of recycled buffers, and return every frame's
/// vectors to an internal pool afterwards — so a steady-state training loop
/// performs **zero** heap allocations per batched PS call. One scratch per
/// worker (it lives in the worker context); it carries no data across calls,
/// only capacity.
#[derive(Debug, Default)]
pub struct PsScratch {
    plan: BatchPlan,
    slots: Vec<FrameSlot>,
    /// Spare `(keys, payload)` vector pairs, recycled between calls.
    pool: Vec<(Vec<u64>, Vec<f32>)>,
    /// Per-shard frame contents for the call in flight (index = shard).
    parts: Vec<(Vec<u64>, Vec<f32>)>,
    /// Per-shard encoded payloads for the call in flight (index = shard).
    enc_parts: Vec<Vec<u8>>,
    /// Spare encoded-byte buffers, recycled between calls.
    byte_pool: Vec<Vec<u8>>,
    /// Sealed frames for the call in flight (index = shard).
    wire: Vec<WireFrame>,
    /// Push-path compressor. `None` means compression is off — the dense
    /// push path is untouched and bit-identical to a scratch that never
    /// heard of compression.
    compressor: Option<PushCompressor>,
}

impl PsScratch {
    /// Fresh scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Select the push-path compression mode for this scratch (and thus for
    /// the worker that owns it). [`CompressionMode::Off`] drops the
    /// compressor — and any accumulated error-feedback residuals — so
    /// pushes go back to dense frames.
    pub fn set_compression(&mut self, mode: CompressionMode) {
        self.compressor = PushCompressor::new(mode);
    }

    /// The configured compression mode.
    pub fn compression(&self) -> CompressionMode {
        self.compressor
            .as_ref()
            .map_or(CompressionMode::Off, |c| c.mode())
    }

    /// Cumulative compression counters; `None` when compression is off.
    pub fn compression_stats(&self) -> Option<CompressionStats> {
        self.compressor.as_ref().map(|c| c.stats())
    }

    /// Feed one epoch's comm/compute lane occupancy to the adaptive
    /// compression policy. No-op for fixed modes or with compression off.
    pub fn adapt_compression(&mut self, comm_secs: f64, compute_secs: f64) {
        if let Some(c) = &mut self.compressor {
            c.adapt(comm_secs, compute_secs);
        }
    }

    /// Fold `key`'s pending error-feedback residual into `acc` (a gradient
    /// being deferred to a degraded-mode backlog) and clear it, so
    /// accumulated compression error rides the backlog instead of waiting
    /// on a wire that may stay down. Returns whether anything was folded;
    /// always false with compression off.
    pub fn fold_residual(&mut self, key: ParamKey, acc: &mut [f32]) -> bool {
        self.compressor
            .as_mut()
            .is_some_and(|c| c.drain_residual_into(key.0, acc))
    }

    /// The codec the next push through this scratch will use.
    fn push_codec(&self) -> Codec {
        self.compressor.as_ref().map_or(Codec::Dense, |c| c.codec())
    }

    /// Recycle last call's frames and hand out one cleared `(keys, payload)`
    /// pair per shard in `parts` (plus one cleared encoded buffer per shard
    /// in `enc_parts`, for compressed pushes).
    fn begin(&mut self, num_shards: usize) {
        for mut f in self.wire.drain(..) {
            self.pool
                .push((std::mem::take(&mut f.keys), std::mem::take(&mut f.payload)));
            self.byte_pool.push(std::mem::take(&mut f.encoded));
        }
        self.pool.append(&mut self.parts);
        self.byte_pool.append(&mut self.enc_parts);
        while self.parts.len() < num_shards {
            let (mut k, mut p) = self.pool.pop().unwrap_or_default();
            k.clear();
            p.clear();
            self.parts.push((k, p));
        }
        while self.enc_parts.len() < num_shards {
            let mut b = self.byte_pool.pop().unwrap_or_default();
            b.clear();
            self.enc_parts.push(b);
        }
    }

    /// Seal each shard's part into its wire frame (empty shards included, so
    /// `wire` stays shard-indexed).
    fn seal_parts(&mut self) {
        for (k, p) in self.parts.drain(..) {
            self.wire.push(WireFrame::seal(k, p));
        }
    }

    /// Seal each shard's part together with its encoded payload into a
    /// compressed wire frame whose checksum covers the *encoded* bytes.
    fn seal_parts_encoded(&mut self, codec: Codec) {
        for ((k, p), e) in self.parts.drain(..).zip(self.enc_parts.drain(..)) {
            self.wire.push(WireFrame::seal_encoded(k, p, e, codec));
        }
    }
}

/// A worker's connection to the parameter server.
#[derive(Debug, Clone)]
pub struct PsClient {
    worker_id: usize,
    topology: ClusterTopology,
    store: Arc<KvStore>,
    meter: Arc<TrafficMeter>,
    faults: Option<FaultBinding>,
    checksums: bool,
    /// Adaptive hedged-pull threshold state (shared by clones so a worker
    /// rebuilt after a crash keeps its calibration).
    hedge: Arc<Mutex<HedgeState>>,
    /// Run-global overload protection (retry budget + circuit breakers),
    /// shared by every worker's client like `ShardLiveness`.
    overload: Option<Arc<OverloadControl>>,
    /// The backend every frame exchange crosses: the simulated cost-model
    /// path by default, or a socket backend via
    /// [`with_transport`](Self::with_transport).
    transport: Arc<dyn Transport>,
}

impl PsClient {
    /// Client for `worker_id` under the given topology, reporting traffic to
    /// `meter`.
    pub fn new(
        worker_id: usize,
        topology: ClusterTopology,
        store: Arc<KvStore>,
        meter: Arc<TrafficMeter>,
    ) -> Self {
        assert!(worker_id < topology.num_workers(), "worker id out of range");
        assert_eq!(
            topology.num_machines(),
            store.router().num_shards(),
            "one PS shard per machine"
        );
        Self {
            worker_id,
            topology,
            store,
            meter,
            faults: None,
            checksums: true,
            hedge: Arc::new(Mutex::new(HedgeState::default())),
            overload: None,
            transport: Arc::new(SimTransport),
        }
    }

    /// Route all frame exchanges through `transport` instead of the
    /// default simulated path. Fault injection, hedging, and replication
    /// are properties of the simulated backend; attaching a socket
    /// transport to a client that also carries a fault binding is a
    /// configuration error the trainer rejects up front.
    pub fn with_transport(mut self, transport: Arc<dyn Transport>) -> Self {
        self.transport = transport;
        self
    }

    /// Attach a fault injector and retry policy to this client.
    pub fn with_faults(mut self, injector: Arc<FaultInjector>, policy: RetryPolicy) -> Self {
        self.faults = Some(FaultBinding { injector, policy });
        self
    }

    /// Attach the run-global overload-protection bundle (retry budget and/or
    /// per-shard circuit breakers). The bundle is shared across every
    /// worker's client in a run so the budget is truly global and all
    /// workers see the same breaker decisions. With no faults firing the
    /// bundle only accumulates counters — a clean run stays bit-identical.
    pub fn with_overload(mut self, control: Arc<OverloadControl>) -> Self {
        self.overload = Some(control);
        self
    }

    /// Enable or disable wire-frame checksum verification (on by default).
    /// With checksums off, frames corrupted in transit are ingested instead
    /// of detected and re-pulled.
    pub fn with_checksums(mut self, on: bool) -> Self {
        self.checksums = on;
        self
    }

    /// Whether this client verifies wire-frame checksums.
    pub fn checksums(&self) -> bool {
        self.checksums
    }

    /// The attached fault binding, if any.
    pub fn faults(&self) -> Option<&FaultBinding> {
        self.faults.as_ref()
    }

    /// The underlying store (for evaluation snapshots).
    pub fn store(&self) -> &Arc<KvStore> {
        &self.store
    }

    /// This client's worker id.
    pub fn worker_id(&self) -> usize {
        self.worker_id
    }

    /// The traffic meter this client reports to (transports meter
    /// successful exchanges themselves).
    pub(crate) fn meter(&self) -> &TrafficMeter {
        &self.meter
    }

    /// The cluster topology (transports split local vs remote lanes by
    /// it, exactly like the simulated path).
    pub(crate) fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// Whether `key` is served from this worker's machine.
    #[inline]
    pub fn is_local(&self, key: ParamKey) -> bool {
        self.topology
            .is_local(self.worker_id, self.store.router().shard_of(key))
    }

    /// The shard `key` is homed on (the placement frame sealing uses).
    #[inline]
    pub fn shard_of(&self, key: ParamKey) -> usize {
        self.store.router().shard_of(key)
    }

    /// Number of PS shards behind this client.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.store.router().num_shards()
    }

    /// Whether `key`'s home shard is reachable right now. Always true
    /// without a fault injector.
    #[inline]
    pub fn shard_available(&self, key: ParamKey) -> bool {
        match &self.faults {
            None => true,
            Some(f) => f
                .injector
                .shard_available(self.store.router().shard_of(key)),
        }
    }

    /// The attached overload-protection bundle, if any.
    pub fn overload(&self) -> Option<&Arc<OverloadControl>> {
        self.overload.as_ref()
    }

    /// The shared breaker table, when breakers are enabled.
    fn breakers(&self) -> Option<&ShardBreakers> {
        self.overload.as_ref().and_then(|c| c.breakers.as_ref())
    }

    /// Whether `shard`'s circuit breaker is tripped (Open or HalfOpen).
    /// Always false without breakers attached.
    #[inline]
    pub fn breaker_tripped(&self, shard: usize) -> bool {
        self.breakers().is_some_and(|b| b.tripped(shard))
    }

    /// Whether `key`'s home shard is worth talking to right now: reachable
    /// *and* not behind a tripped breaker. This is the brownout predicate —
    /// the HET-KG cache serves stale under it instead of piling load onto a
    /// drowning shard.
    #[inline]
    pub fn shard_healthy(&self, key: ParamKey) -> bool {
        self.shard_available(key) && !self.breaker_tripped(self.store.router().shard_of(key))
    }

    /// Pull one key (one message).
    pub fn pull(&self, key: ParamKey, out: &mut [f32]) {
        self.try_pull(key, out)
            .expect("ps pull failed after retries");
    }

    /// Fallible [`pull`](Self::pull): fails only with a fault injector
    /// attached and the retry budget exhausted.
    pub fn try_pull(&self, key: ParamKey, out: &mut [f32]) -> Result<(), RpcError> {
        self.try_pull_with(key, out, &mut PsScratch::new())
    }

    /// [`try_pull`](Self::try_pull) with caller-owned scratch, so repeated
    /// single-key pulls reuse the frame buffers instead of allocating.
    pub fn try_pull_with(
        &self,
        key: ParamKey,
        out: &mut [f32],
        scratch: &mut PsScratch,
    ) -> Result<(), RpcError> {
        let shard = self.store.router().shard_of(key);
        // The server serializes the row into the response frame, sealing the
        // checksum over the clean data; whatever survives transit (possibly
        // a damaged payload, if checksums are off) lands in `out`. On error
        // `out` is untouched.
        scratch.begin(1);
        let (mut keys, mut payload) = scratch.parts.pop().expect("begin filled one part");
        keys.push(key.0);
        payload.resize(out.len(), 0.0);
        self.store.pull(key, &mut payload);
        let mut frame = WireFrame::seal(keys, payload);
        let result = self.transmit_frame(shard, &mut frame, FrameOp::Pull);
        if result.is_ok() {
            out.copy_from_slice(&frame.payload);
        }
        scratch.wire.push(frame); // recycled by the next call
        result
    }

    /// Pull many keys; `sink(i, row)` receives each key's row in order.
    ///
    /// Metering: requested keys are grouped by shard; each touched shard
    /// costs one message carrying its keys' ids plus the returned rows.
    pub fn pull_batch(&self, keys: &[ParamKey], sink: impl FnMut(usize, &[f32])) {
        self.try_pull_batch(keys, sink)
            .expect("ps pull_batch failed after retries");
    }

    /// Fallible [`pull_batch`](Self::pull_batch). All-or-nothing: on error
    /// no row reaches `sink`. On success rows arrive in key order.
    pub fn try_pull_batch(
        &self,
        keys: &[ParamKey],
        sink: impl FnMut(usize, &[f32]),
    ) -> Result<(), RpcError> {
        self.try_pull_batch_with(keys, &mut PsScratch::new(), sink)
    }

    /// [`pull_batch`](Self::pull_batch) with caller-owned scratch (the hot
    /// training path); panics only if the retry budget is exhausted.
    pub fn pull_batch_with(
        &self,
        keys: &[ParamKey],
        scratch: &mut PsScratch,
        sink: impl FnMut(usize, &[f32]),
    ) {
        self.try_pull_batch_with(keys, scratch, sink)
            .expect("ps pull_batch failed after retries");
    }

    /// [`try_pull_batch`](Self::try_pull_batch) with caller-owned scratch:
    /// placements are resolved once into a shard-grouped [`BatchPlan`], each
    /// shard is read-locked once, rows are copied straight into recycled
    /// frame buffers, and nothing is allocated at steady state.
    pub fn try_pull_batch_with(
        &self,
        keys: &[ParamKey],
        scratch: &mut PsScratch,
        mut sink: impl FnMut(usize, &[f32]),
    ) -> Result<(), RpcError> {
        if keys.is_empty() {
            return Ok(());
        }
        let router = self.store.router();
        router.plan_into(keys, &mut scratch.plan);
        scratch.begin(router.num_shards());
        let PsScratch {
            plan, slots, parts, ..
        } = &mut *scratch;
        slots.clear();
        slots.resize(keys.len(), FrameSlot::default());
        // The sink runs under each shard's read lock; it only appends to
        // this worker's private buffers, so no other lock is touched.
        self.store.pull_planned(plan, |i, shard, row| {
            let (frame_keys, payload) = &mut parts[shard];
            let offset = payload.len();
            payload.extend_from_slice(row);
            frame_keys.push(keys[i].0);
            slots[i] = FrameSlot {
                shard,
                offset,
                width: row.len(),
            };
        });
        scratch.seal_parts();
        self.debug_assert_frame_bytes(keys, &scratch.wire);
        self.transmit_frames(&mut scratch.wire, FrameOp::Pull)?;
        for (i, slot) in scratch.slots.iter().enumerate() {
            sink(
                i,
                &scratch.wire[slot.shard].payload[slot.offset..slot.offset + slot.width],
            );
        }
        Ok(())
    }

    /// Run `op` against this client and return its result together with the
    /// traffic it metered. A worker's meter is private to it and the worker
    /// is single-threaded, so the snapshot delta is exactly the operation's
    /// own traffic — the duration a timeline posts for the comm lane.
    pub fn metered<T>(&self, op: impl FnOnce(&Self) -> T) -> (T, TrafficSnapshot) {
        let before = self.meter.snapshot();
        let out = op(self);
        (out, self.meter.snapshot().since(before))
    }

    /// Issue half of a split pull: execute the batched pull *now* (the
    /// store is read, the frames transit and are metered), parking each
    /// key's row back-to-back in key order in `rows`, and return the
    /// operation's metered traffic so the caller can post its duration to
    /// a timeline. Consume later with [`PsClient::complete_pull_batch`].
    ///
    /// On error `rows` is left empty and nothing is observable.
    pub fn try_pull_batch_issue(
        &self,
        keys: &[ParamKey],
        scratch: &mut PsScratch,
        rows: &mut Vec<f32>,
    ) -> Result<TrafficSnapshot, RpcError> {
        rows.clear();
        let before = self.meter.snapshot();
        self.try_pull_batch_with(keys, scratch, |_, row| rows.extend_from_slice(row))?;
        Ok(self.meter.snapshot().since(before))
    }

    /// Refresh rows parked by [`PsClient::try_pull_batch_issue`] to the
    /// store's *current* values, unmetered. The split pull's frames — and
    /// their bytes — already transited at issue time; delivery happens at
    /// consume time, so the parked payload is brought up to date with what
    /// the server holds now. This is what keeps a staged pull bit-identical
    /// to the sequential schedule even when other workers push between
    /// issue and consume: the consumer observes exactly the rows a
    /// sequential pull at the consume point would.
    pub fn refresh_pull_batch(&self, keys: &[ParamKey], rows: &mut [f32]) {
        let mut offset = 0;
        for &k in keys {
            let width = (self.store.row_bytes(k) / 4) as usize;
            self.store.pull(k, &mut rows[offset..offset + width]);
            offset += width;
        }
        debug_assert_eq!(offset, rows.len(), "rows do not match the key batch");
    }

    /// Complete half of a split pull: replay rows parked by
    /// [`PsClient::try_pull_batch_issue`] to `sink` in key order. Row
    /// widths come from the store's schema, so `rows` must belong to
    /// exactly this `keys` batch.
    pub fn complete_pull_batch(
        &self,
        keys: &[ParamKey],
        rows: &[f32],
        mut sink: impl FnMut(usize, &[f32]),
    ) {
        let mut offset = 0;
        for (i, &k) in keys.iter().enumerate() {
            let width = (self.store.row_bytes(k) / 4) as usize;
            sink(i, &rows[offset..offset + width]);
            offset += width;
        }
        debug_assert_eq!(offset, rows.len(), "rows do not match the key batch");
    }

    /// Push one gradient (one message); the server applies `optimizer`.
    pub fn push(&self, key: ParamKey, grad: &[f32], optimizer: &dyn Optimizer) {
        self.try_push(key, grad, optimizer)
            .expect("ps push failed after retries");
    }

    /// Fallible [`push`](Self::push).
    pub fn try_push(
        &self,
        key: ParamKey,
        grad: &[f32],
        optimizer: &dyn Optimizer,
    ) -> Result<(), RpcError> {
        self.try_push_with(key, grad, optimizer, &mut PsScratch::new())
    }

    /// [`try_push`](Self::try_push) with caller-owned scratch, so repeated
    /// single-key pushes reuse the frame buffers instead of allocating a
    /// key vector and a gradient copy per call — the push mirror of
    /// [`try_pull_with`](Self::try_pull_with). The scratch's compression
    /// mode applies exactly as it does for batched pushes.
    pub fn try_push_with(
        &self,
        key: ParamKey,
        grad: &[f32],
        optimizer: &dyn Optimizer,
        scratch: &mut PsScratch,
    ) -> Result<(), RpcError> {
        let shard = self.store.router().shard_of(key);
        let codec = scratch.push_codec();
        scratch.begin(1);
        let (mut keys, mut payload) = scratch.parts.pop().expect("begin filled one part");
        keys.push(key.0);
        payload.extend_from_slice(grad);
        let mut frame = if codec == Codec::Dense {
            WireFrame::seal(keys, payload)
        } else {
            let comp = scratch
                .compressor
                .as_mut()
                .expect("non-dense codec without a compressor");
            comp.begin_batch(1);
            comp.stage(0, key.0, &mut payload);
            let mut enc = scratch.enc_parts.pop().expect("begin filled one part");
            comp.encode(codec, &payload, &mut enc);
            WireFrame::seal_encoded(keys, payload, enc, codec)
        };
        let result = self.transmit_frame(shard, &mut frame, FrameOp::Push);
        if result.is_ok() {
            if let Some(comp) = scratch.compressor.as_mut() {
                if codec != Codec::Dense {
                    comp.decode_commit_row(codec, 0, key.0, &frame.encoded, &mut frame.payload);
                }
                comp.note_frame(&frame);
            }
            self.meter.record_push(
                frame.wire_bytes(),
                KEY_BYTES + frame.payload.len() as u64 * 4,
            );
            self.store.push_grad(key, &frame.payload, optimizer);
            self.ship_replication(shard);
        }
        scratch.wire.push(frame); // recycled by the next call
        result
    }

    /// Push many gradients, one message per shard touched.
    ///
    /// `grads[i]` is the gradient for `keys[i]`.
    pub fn push_batch(&self, keys: &[ParamKey], grads: &[&[f32]], optimizer: &dyn Optimizer) {
        self.try_push_batch(keys, grads, optimizer)
            .expect("ps push_batch failed after retries");
    }

    /// Fallible [`push_batch`](Self::push_batch). All-or-nothing: on error
    /// no gradient is applied.
    pub fn try_push_batch(
        &self,
        keys: &[ParamKey],
        grads: &[&[f32]],
        optimizer: &dyn Optimizer,
    ) -> Result<(), RpcError> {
        self.try_push_batch_with(keys, grads, optimizer, &mut PsScratch::new())
    }

    /// [`push_batch`](Self::push_batch) with caller-owned scratch (the hot
    /// training path); panics only if the retry budget is exhausted.
    pub fn push_batch_with(
        &self,
        keys: &[ParamKey],
        grads: &[&[f32]],
        optimizer: &dyn Optimizer,
        scratch: &mut PsScratch,
    ) {
        self.try_push_batch_with(keys, grads, optimizer, scratch)
            .expect("ps push_batch failed after retries");
    }

    /// [`try_push_batch`](Self::try_push_batch) with caller-owned scratch:
    /// one plan resolves placements for both frame sealing and server-side
    /// application, each shard is write-locked once, and duplicate keys
    /// apply in batch order (the grouping is stable).
    pub fn try_push_batch_with(
        &self,
        keys: &[ParamKey],
        grads: &[&[f32]],
        optimizer: &dyn Optimizer,
        scratch: &mut PsScratch,
    ) -> Result<(), RpcError> {
        assert_eq!(keys.len(), grads.len(), "one gradient per key");
        self.try_push_batch_rows(keys, |i| grads[i], optimizer, scratch)
    }

    /// [`push_batch_with`](Self::push_batch_with) with the gradient rows
    /// supplied by lookup instead of a slice-of-slices, so callers holding
    /// gradients in a map (e.g. a `GradAccum`) push without building a
    /// per-call `Vec<&[f32]>`. Panics only if the retry budget is
    /// exhausted.
    pub fn push_batch_rows<'a>(
        &self,
        keys: &[ParamKey],
        row_of: impl Fn(usize) -> &'a [f32],
        optimizer: &dyn Optimizer,
        scratch: &mut PsScratch,
    ) {
        self.try_push_batch_rows(keys, row_of, optimizer, scratch)
            .expect("ps push_batch failed after retries");
    }

    /// Fallible [`push_batch_rows`](Self::push_batch_rows). `row_of(i)` is
    /// the gradient for `keys[i]`. All-or-nothing, like
    /// [`try_push_batch_with`](Self::try_push_batch_with), and byte- and
    /// application-order-identical to it for the same rows.
    pub fn try_push_batch_rows<'a>(
        &self,
        keys: &[ParamKey],
        row_of: impl Fn(usize) -> &'a [f32],
        optimizer: &dyn Optimizer,
        scratch: &mut PsScratch,
    ) -> Result<(), RpcError> {
        if keys.is_empty() {
            return Ok(());
        }
        let codec = scratch.push_codec();
        if codec == Codec::Dense {
            self.seal_frames_by(keys, row_of, scratch);
        } else {
            self.seal_frames_compressed(keys, row_of, codec, scratch);
        }
        self.transmit_frames(&mut scratch.wire, FrameOp::Push)?;
        if codec != Codec::Dense {
            Self::decode_and_commit(keys, codec, scratch);
        }
        self.meter_push_frames(scratch);
        let (wire, slots) = (&scratch.wire, &scratch.slots);
        self.store.push_planned(
            &scratch.plan,
            |i| {
                let s = slots[i];
                &wire[s.shard].payload[s.offset..s.offset + s.width]
            },
            optimizer,
        );
        for shard in scratch.plan.shards() {
            self.ship_replication(shard);
        }
        Ok(())
    }

    /// Overwrite many keys' values (no optimizer), one message per shard
    /// touched. Used by block-partitioned training (PBG) to save entity
    /// partitions back to shared storage.
    pub fn write_batch(&self, keys: &[ParamKey], values: &[&[f32]]) {
        self.try_write_batch(keys, values)
            .expect("ps write_batch failed after retries");
    }

    /// Fallible [`write_batch`](Self::write_batch). All-or-nothing.
    pub fn try_write_batch(&self, keys: &[ParamKey], values: &[&[f32]]) -> Result<(), RpcError> {
        self.try_write_batch_with(keys, values, &mut PsScratch::new())
    }

    /// [`write_batch`](Self::write_batch) with caller-owned scratch; panics
    /// only if the retry budget is exhausted.
    pub fn write_batch_with(&self, keys: &[ParamKey], values: &[&[f32]], scratch: &mut PsScratch) {
        self.try_write_batch_with(keys, values, scratch)
            .expect("ps write_batch failed after retries");
    }

    /// [`try_write_batch`](Self::try_write_batch) with caller-owned scratch.
    /// Duplicate keys resolve to the last value in batch order, like
    /// sequential stores.
    pub fn try_write_batch_with(
        &self,
        keys: &[ParamKey],
        values: &[&[f32]],
        scratch: &mut PsScratch,
    ) -> Result<(), RpcError> {
        assert_eq!(keys.len(), values.len(), "one value per key");
        if keys.is_empty() {
            return Ok(());
        }
        self.seal_frames_by(keys, |i| values[i], scratch);
        self.transmit_frames(&mut scratch.wire, FrameOp::Write)?;
        let (wire, slots) = (&scratch.wire, &scratch.slots);
        self.store.store_planned(&scratch.plan, |i| {
            let s = slots[i];
            &wire[s.shard].payload[s.offset..s.offset + s.width]
        });
        for shard in scratch.plan.shards() {
            self.ship_replication(shard);
        }
        Ok(())
    }

    /// Plan a batch and seal one frame per shard from caller-supplied rows
    /// (`row_of(i)` belongs to `keys[i]`), leaving the plan, slots, and
    /// wire frames in `scratch`. Per-shard frame contents are in batch
    /// order — exactly what per-key grouping produced, since the plan's
    /// grouping is stable — so metered bytes are unchanged. Frame bytes are
    /// exactly the pre-frame accounting (`row_bytes + KEY_BYTES` per key);
    /// the checksum itself rides in the per-message envelope overhead.
    fn seal_frames_by<'a>(
        &self,
        keys: &[ParamKey],
        row_of: impl Fn(usize) -> &'a [f32],
        scratch: &mut PsScratch,
    ) {
        let router = self.store.router();
        router.plan_into(keys, &mut scratch.plan);
        scratch.begin(router.num_shards());
        let PsScratch {
            plan, slots, parts, ..
        } = &mut *scratch;
        slots.clear();
        slots.resize(keys.len(), FrameSlot::default());
        for shard in plan.shards() {
            let (frame_keys, payload) = &mut parts[shard];
            for i in plan.indices(shard) {
                let row = row_of(i);
                let offset = payload.len();
                payload.extend_from_slice(row);
                frame_keys.push(keys[i].0);
                slots[i] = FrameSlot {
                    shard,
                    offset,
                    width: row.len(),
                };
            }
        }
        scratch.seal_parts();
        self.debug_assert_frame_bytes(keys, &scratch.wire);
    }

    /// Debug check: sealed **dense** frames carry exactly the per-key
    /// metered bytes. Compressed frames intentionally carry fewer — their
    /// walk is checked row-by-row in [`Self::decode_and_commit`].
    fn debug_assert_frame_bytes(&self, keys: &[ParamKey], wire: &[WireFrame]) {
        debug_assert_eq!(
            wire.iter().map(|fr| fr.wire_bytes()).sum::<u64>(),
            keys.iter()
                .map(|&k| self.store.row_bytes(k) + KEY_BYTES)
                .sum::<u64>(),
            "frame bytes must match the metered per-key accounting"
        );
    }

    /// Compressed counterpart of [`Self::seal_frames_by`]: plan the batch,
    /// stage each row through the compressor (error feedback *peeks* the
    /// key's residual — nothing is committed until the transmit succeeds),
    /// encode it under `codec`, and seal per-shard frames whose checksum
    /// covers the encoded bytes. The staged dense rows stay client-side in
    /// the frame payload (never on the wire) so a successful transmit can
    /// commit residuals without re-deriving them.
    fn seal_frames_compressed<'a>(
        &self,
        keys: &[ParamKey],
        row_of: impl Fn(usize) -> &'a [f32],
        codec: Codec,
        scratch: &mut PsScratch,
    ) {
        let router = self.store.router();
        router.plan_into(keys, &mut scratch.plan);
        scratch.begin(router.num_shards());
        let PsScratch {
            plan,
            slots,
            parts,
            enc_parts,
            compressor,
            ..
        } = &mut *scratch;
        let comp = compressor
            .as_mut()
            .expect("non-dense codec without a compressor");
        comp.begin_batch(keys.len());
        slots.clear();
        slots.resize(keys.len(), FrameSlot::default());
        for shard in plan.shards() {
            let (frame_keys, payload) = &mut parts[shard];
            let enc = &mut enc_parts[shard];
            for i in plan.indices(shard) {
                let row = row_of(i);
                let offset = payload.len();
                payload.extend_from_slice(row);
                comp.stage(i, keys[i].0, &mut payload[offset..]);
                comp.encode(codec, &payload[offset..], enc);
                frame_keys.push(keys[i].0);
                slots[i] = FrameSlot {
                    shard,
                    offset,
                    width: row.len(),
                };
            }
        }
        scratch.seal_parts_encoded(codec);
    }

    /// After a successful compressed transmit: walk each frame's encoded
    /// bytes (row boundaries are a pure function of codec and row width —
    /// no counts or lengths are trusted from the wire), overwrite each
    /// staged payload row with the decoded values the server actually
    /// applies, and commit each key's error-feedback residual. With
    /// checksums off an ingested corrupt frame decodes to finite garbage
    /// here, exactly like the dense ingest path.
    fn decode_and_commit(keys: &[ParamKey], codec: Codec, scratch: &mut PsScratch) {
        let PsScratch {
            plan,
            slots,
            wire,
            compressor,
            ..
        } = &mut *scratch;
        let comp = compressor
            .as_mut()
            .expect("non-dense codec without a compressor");
        for shard in plan.shards() {
            let frame = &mut wire[shard];
            let mut off = 0;
            for i in plan.indices(shard) {
                let s = slots[i];
                let len = encoded_len(codec, s.width);
                comp.decode_commit_row(
                    codec,
                    i,
                    keys[i].0,
                    &frame.encoded[off..off + len],
                    &mut frame.payload[s.offset..s.offset + s.width],
                );
                off += len;
            }
            debug_assert_eq!(
                off,
                frame.encoded.len(),
                "encoded walk must cover the frame"
            );
        }
    }

    /// Meter delivered push frames on the push lane — a reporting
    /// *breakdown* of bytes already counted on the local/remote lanes
    /// (actual wire bytes vs what the same rows cost dense), not
    /// additional traffic — and feed the compressor's cumulative stats
    /// when compression is on. Runs for dense pushes too, so the
    /// raw-vs-wire comparison has a baseline in every mode.
    fn meter_push_frames(&self, scratch: &mut PsScratch) {
        let PsScratch {
            wire, compressor, ..
        } = &mut *scratch;
        for frame in wire.iter() {
            if frame.keys.is_empty() {
                continue;
            }
            let raw = frame.keys.len() as u64 * KEY_BYTES + frame.payload.len() as u64 * 4;
            self.meter.record_push(frame.wire_bytes(), raw);
            if let Some(c) = compressor.as_mut() {
                c.note_frame(frame);
            }
        }
    }

    /// Send one frame per touched shard, in ascending shard order.
    /// All-or-nothing: the first shard that exhausts its retries aborts the
    /// batch.
    fn transmit_frames(&self, frames: &mut [WireFrame], op: FrameOp) -> Result<(), RpcError> {
        for (shard, frame) in frames.iter_mut().enumerate() {
            if !frame.keys.is_empty() {
                self.transmit_frame(shard, frame, op)?;
            }
        }
        Ok(())
    }

    /// Exchange one frame with `shard` through the attached
    /// [`Transport`]. The default [`SimTransport`] delegates straight to
    /// [`sim_exchange`](Self::sim_exchange); a socket transport puts the
    /// frame on a real wire instead.
    fn transmit_frame(
        &self,
        shard: usize,
        frame: &mut WireFrame,
        op: FrameOp,
    ) -> Result<(), RpcError> {
        let transport = Arc::clone(&self.transport);
        transport.exchange(self, shard, op, frame)
    }

    /// Send one frame to `shard`, retrying under the fault policy. Every
    /// transmission attempt is metered — a dropped or corrupted message
    /// still crossed the wire, so its bytes (and its retransmission's)
    /// count toward simulated network time. On return the frame holds what
    /// the receiver accepted: the sealed contents, unless checksums are off
    /// and transit corruption was ingested.
    ///
    /// `hedgeable` marks read traffic (pulls): if a delivered remote pull
    /// took far longer than the cost model predicts (a straggler episode),
    /// the same request is hedged to a backup replica and the faster
    /// response wins. Writes are never hedged — duplicating a gradient push
    /// would double-apply it.
    pub(crate) fn sim_exchange(
        &self,
        shard: usize,
        frame: &mut WireFrame,
        hedgeable: bool,
    ) -> Result<(), RpcError> {
        let bytes = frame.wire_bytes();
        let remote = !self.topology.is_local(self.worker_id, shard);
        let record = |b: u64| {
            if remote {
                self.meter.record_remote(b);
            } else {
                self.meter.record_local(b);
            }
        };
        let Some(f) = &self.faults else {
            record(bytes);
            return Ok(());
        };
        let mut attempts: u32 = 0;
        loop {
            // Circuit-breaker gate. Open breakers fail fast: sheddable
            // writes surface a typed `Overloaded` immediately (the caller
            // defers the push — brownout), while required reads sleep out
            // the cooldown in simulated time and become the HalfOpen probe.
            // Neither path burns an attempt: nothing transited.
            if let Some(br) = self.breakers() {
                match br.allow(shard, f.injector.now()) {
                    Gate::Allow | Gate::Probe => {}
                    Gate::FastFail { until } => {
                        f.injector.note_breaker_fast_fail();
                        if !hedgeable {
                            return Err(RpcError::Overloaded { shard, attempts });
                        }
                        let wait = (until - f.injector.now()).max(0.0);
                        f.injector.note_backoff(wait);
                        continue;
                    }
                }
            }
            attempts += 1;
            let sent_at = f.injector.now();
            match f.injector.adjudicate(shard, remote, bytes) {
                Verdict::Deliver => {
                    record(bytes);
                    let elapsed = f.injector.now() - sent_at;
                    if let Some(ctl) = &self.overload {
                        if let Some(budget) = &ctl.budget {
                            budget.earn();
                        }
                        if let Some(br) = &ctl.breakers {
                            let base = if remote {
                                f.injector.cost().remote_time(bytes, 1)
                            } else {
                                f.injector.cost().local_time(bytes, 1)
                            };
                            let ratio = if base > 0.0 { elapsed / base } else { 1.0 };
                            br.on_success(shard, f.injector.now(), ratio);
                        }
                    }
                    if hedgeable && remote {
                        self.maybe_hedge(f, shard, bytes, elapsed);
                    }
                    return Ok(());
                }
                Verdict::Overloaded { retry_at } => {
                    // Shed at the shard's ingress queue: the message never
                    // transited (the refusal's latency was charged during
                    // adjudication), so nothing is metered here.
                    if let Some(br) = self.breakers() {
                        br.on_failure(shard, f.injector.now());
                    }
                    if attempts >= f.policy.max_attempts {
                        return Err(RpcError::Overloaded { shard, attempts });
                    }
                    let relief = (retry_at - f.injector.now()).max(0.0);
                    match self.overload.as_ref().and_then(|c| c.budget.as_ref()) {
                        Some(budget) => {
                            if budget.try_spend() {
                                // Paid retry: wait for the queue to drain
                                // one slot, then retransmit.
                                f.injector.note_retry(bytes);
                                f.injector.note_backoff(relief);
                            } else if hedgeable {
                                // Budget dry, but reads must complete: be
                                // patient instead of pushy — same wait, no
                                // retransmission pressure accounted.
                                f.injector.note_retry_denied();
                                f.injector.note_backoff(relief);
                            } else {
                                // Budget dry and the write is sheddable:
                                // hand it back for the brownout backlog.
                                f.injector.note_retry_denied();
                                return Err(RpcError::Overloaded { shard, attempts });
                            }
                        }
                        None => {
                            // No budget: the classic retry storm. Eager,
                            // jittered retransmissions hammer the shard
                            // while it is still shedding — this is the
                            // behavior the budget exists to prevent.
                            f.injector.note_retry(bytes);
                            f.injector
                                .note_backoff(f.policy.backoff(attempts, f.injector.jitter()));
                        }
                    }
                }
                Verdict::Corrupt => {
                    // The damaged frame still transited the link.
                    record(bytes);
                    let mut damaged = frame.clone();
                    damaged.corrupt(f.injector.corruption_pattern());
                    if self.checksums && !damaged.verify() {
                        f.injector.note_corrupt_detected();
                        if attempts >= f.policy.max_attempts {
                            return Err(RpcError::CorruptPayload { attempts });
                        }
                        f.injector.note_retry(bytes);
                        f.injector
                            .note_backoff(f.policy.backoff(attempts, f.injector.jitter()));
                    } else {
                        // No digest to check (or, astronomically rarely, a
                        // digest collision): the receiver accepts garbage.
                        f.injector.note_corrupt_ingested();
                        *frame = damaged;
                        return Ok(());
                    }
                }
                Verdict::Drop => {
                    // The lost message still transited the link.
                    record(bytes);
                    if attempts >= f.policy.max_attempts {
                        return Err(RpcError::Dropped { attempts });
                    }
                    f.injector.note_retry(bytes);
                    f.injector
                        .note_backoff(f.policy.backoff(attempts, f.injector.jitter()));
                }
                Verdict::ShardDown { until } => {
                    if attempts >= f.policy.max_attempts {
                        return Err(RpcError::ShardUnavailable { shard, attempts });
                    }
                    let backoff = f.policy.backoff(attempts, f.injector.jitter());
                    if f.policy.wait_for_recovery {
                        // Sleep (in simulated time) until the shard is back.
                        let wait = (until - f.injector.now()).max(0.0) + backoff;
                        f.injector.note_backoff(wait);
                    } else {
                        f.injector.note_backoff(backoff);
                    }
                }
                Verdict::ShardDead => {
                    // Permanent loss: promote a backup (or fail for good),
                    // then let the loop retransmit to the new primary. The
                    // attempt against the dead primary doesn't burn a retry
                    // — failover is a topology change, not flaky transit.
                    self.fail_over(f, shard)?;
                    attempts -= 1;
                }
            }
        }
    }

    /// Handle a permanently dead primary: race to mark the shard promoted
    /// (exactly one caller wins), replay the replication backlog onto the
    /// backup (anti-entropy catch-up, metered as replication traffic), and
    /// swap the backup into the primary slot. Losers of the race return
    /// immediately — the winner's promotion is already visible through the
    /// shared liveness table by the time `promote` returns `true` here.
    fn fail_over(&self, f: &FaultBinding, shard: usize) -> Result<(), RpcError> {
        let Some(liveness) = f.injector.liveness() else {
            return Err(RpcError::ShardLost { shard });
        };
        if liveness.promote(shard, f.injector.now()) {
            if !self.store.has_backup(shard) {
                return Err(RpcError::ShardLost { shard });
            }
            let flush = self.store.catch_up(shard);
            for _ in 0..flush.messages {
                self.meter.record_replication(flush.payload_bytes);
            }
            if !self.store.promote(shard) {
                return Err(RpcError::ShardLost { shard });
            }
            f.injector
                .note_promotion(flush.records, flush.messages * flush.payload_bytes);
        }
        Ok(())
    }

    /// Hedge a slow remote pull against a backup replica. `elapsed` is the
    /// simulated time the delivered attempt took; `base` is what the cost
    /// model says an unperturbed transfer costs. When the ratio blows past
    /// an adaptive threshold (an EWMA of recent ratios, floored so routine
    /// jitter never trips it), the same pull is issued to the backup: its
    /// bytes are metered on the replication lane, and if the backup's
    /// unperturbed response would have arrived first, the saved time is
    /// credited back to the worker's clock. Payloads are untouched — the
    /// primary's frame is already sealed and backups are value-identical
    /// modulo the bounded replication lag — so hedging perturbs time and
    /// counters only, never training values.
    fn maybe_hedge(&self, f: &FaultBinding, shard: usize, bytes: u64, elapsed: f64) {
        if !self.store.has_backup(shard) {
            return;
        }
        let base = f.injector.cost().remote_time(bytes, 1);
        if base <= 0.0 {
            return;
        }
        let ratio = elapsed / base;
        let threshold = {
            let mut h = self.hedge.lock();
            let t = h.threshold();
            h.observe(ratio);
            t
        };
        if ratio < threshold {
            return;
        }
        self.meter.record_replication(bytes);
        let backup_time = base + f.injector.cost().remote_latency;
        let won = backup_time < elapsed;
        f.injector
            .note_hedged_pull(won, if won { elapsed - backup_time } else { 0.0 });
    }

    /// Drain any full replication batches for `shard` to its backups,
    /// metering the shipped frames on the replication lane. A no-op (no
    /// locks, no allocation) when replication is off.
    fn ship_replication(&self, shard: usize) {
        if self.store.replication() <= 1 {
            return;
        }
        let flush = self.store.replicate(shard);
        for _ in 0..flush.messages {
            self.meter.record_replication(flush.payload_bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Sgd;
    use crate::router::ShardRouter;
    use hetkg_embed::init::Init;
    use hetkg_kgraph::KeySpace;
    use hetkg_netsim::{CostModel, FaultPlan};

    fn setup(machines: usize) -> (Arc<KvStore>, ClusterTopology) {
        let ks = KeySpace::new(8, 4);
        let router = ShardRouter::round_robin(ks, machines);
        let store = Arc::new(KvStore::new(
            router,
            4,
            4,
            0,
            Init::Uniform { bound: 0.1 },
            1,
        ));
        (store, ClusterTopology::new(machines, 1))
    }

    fn injector(plan: FaultPlan) -> Arc<FaultInjector> {
        Arc::new(FaultInjector::new(plan, CostModel::gigabit(), 0))
    }

    #[test]
    fn hedge_state_discards_non_finite_ratios() {
        let mut h = HedgeState::default();
        // A zero-duration baseline pull produces inf (x/0) or NaN (0/0);
        // neither may prime or move the EWMA.
        h.observe(f64::INFINITY);
        assert!(!h.primed, "inf must not prime the tracker");
        assert_eq!(h.threshold(), f64::INFINITY, "still never-hedge-blind");
        h.observe(f64::NAN);
        assert!(!h.primed, "NaN must not prime the tracker");
        h.observe(3.0);
        assert!(h.primed);
        assert_eq!(h.ewma, 3.0);
        let before = h.ewma;
        h.observe(f64::NEG_INFINITY);
        h.observe(f64::NAN);
        assert_eq!(h.ewma, before, "non-finite ratios leave the EWMA alone");
        assert!(h.threshold().is_finite());
        // Finite observations keep smoothing as before.
        h.observe(5.0);
        assert!((h.ewma - (0.8 * 3.0 + 0.2 * 5.0)).abs() < 1e-12);
    }

    #[test]
    fn local_and_remote_are_metered_separately() {
        let (store, topo) = setup(2);
        let meter = Arc::new(TrafficMeter::new());
        let client = PsClient::new(0, topo, store, meter.clone());
        let mut buf = [0.0f32; 4];
        // Entity key 0 -> shard 0 (round robin): local for worker 0.
        client.pull(ParamKey(0), &mut buf);
        // Entity key 1 -> shard 1: remote.
        client.pull(ParamKey(1), &mut buf);
        let s = meter.snapshot();
        assert_eq!(s.local_messages, 1);
        assert_eq!(s.remote_messages, 1);
        assert_eq!(s.local_bytes, 16 + 8);
        assert_eq!(s.remote_bytes, 16 + 8);
    }

    #[test]
    fn batch_pull_coalesces_messages_per_shard() {
        let (store, topo) = setup(2);
        let meter = Arc::new(TrafficMeter::new());
        let client = PsClient::new(0, topo, store, meter.clone());
        // Keys 0,2,4,6 on shard 0 (local), 1,3,5 on shard 1 (remote).
        let keys: Vec<ParamKey> = (0..7).map(ParamKey).collect();
        let mut rows = 0;
        client.pull_batch(&keys, |_, row| {
            assert_eq!(row.len(), 4);
            rows += 1;
        });
        assert_eq!(rows, 7);
        let s = meter.snapshot();
        assert_eq!(s.local_messages, 1, "one coalesced local message");
        assert_eq!(s.remote_messages, 1, "one coalesced remote message");
        assert_eq!(s.local_bytes, 4 * (16 + 8));
        assert_eq!(s.remote_bytes, 3 * (16 + 8));
    }

    #[test]
    fn push_updates_the_store() {
        let (store, topo) = setup(1);
        let meter = Arc::new(TrafficMeter::new());
        let client = PsClient::new(0, topo, store.clone(), meter);
        store.store(ParamKey(0), &[1.0; 4]);
        client.push(ParamKey(0), &[1.0; 4], &Sgd { lr: 0.5 });
        let mut buf = [0.0f32; 4];
        store.pull(ParamKey(0), &mut buf);
        assert!((buf[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn push_batch_applies_all_and_meters_once_per_shard() {
        let (store, topo) = setup(2);
        let meter = Arc::new(TrafficMeter::new());
        let client = PsClient::new(1, topo, store.clone(), meter.clone());
        store.store(ParamKey(0), &[0.0; 4]);
        store.store(ParamKey(1), &[0.0; 4]);
        let g = [1.0f32; 4];
        client.push_batch(&[ParamKey(0), ParamKey(1)], &[&g, &g], &Sgd { lr: 1.0 });
        let mut buf = [0.0f32; 4];
        store.pull(ParamKey(0), &mut buf);
        assert!((buf[0] + 1.0).abs() < 1e-6);
        let s = meter.snapshot();
        // Worker 1 is on machine 1: key 1 local, key 0 remote.
        assert_eq!(s.local_messages, 1);
        assert_eq!(s.remote_messages, 1);
    }

    #[test]
    fn empty_batches_cost_nothing() {
        let (store, topo) = setup(2);
        let meter = Arc::new(TrafficMeter::new());
        let client = PsClient::new(0, topo, store, meter.clone());
        client.pull_batch(&[], |_, _| panic!("no rows expected"));
        client.push_batch(&[], &[], &Sgd { lr: 1.0 });
        assert_eq!(meter.snapshot().total_bytes(), 0);
    }

    #[test]
    fn single_machine_everything_is_local() {
        let (store, topo) = setup(1);
        let meter = Arc::new(TrafficMeter::new());
        let client = PsClient::new(0, topo, store, meter.clone());
        let keys: Vec<ParamKey> = (0..12).map(ParamKey).collect();
        client.pull_batch(&keys, |_, _| {});
        let s = meter.snapshot();
        assert_eq!(s.remote_bytes, 0);
        assert!(s.local_bytes > 0);
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch_calls() {
        // One worker reusing a single PsScratch across many mixed calls must
        // produce the same rows, same store contents, and same metered
        // traffic as the allocating convenience methods.
        let (store_a, topo) = setup(2);
        let (store_b, _) = setup(2);
        let meter_a = Arc::new(TrafficMeter::new());
        let meter_b = Arc::new(TrafficMeter::new());
        let a = PsClient::new(0, topo, store_a.clone(), meter_a.clone());
        let b = PsClient::new(0, topo, store_b.clone(), meter_b.clone());
        let mut scratch = PsScratch::new();
        // Entities on both shards, a duplicate, and a relation key.
        let keys = [1u64, 0, 3, 1, 9].map(ParamKey);
        let g = [0.25f32; 4];
        let grads: Vec<&[f32]> = keys.iter().map(|_| &g[..]).collect();
        for _ in 0..3 {
            let mut rows_a = Vec::new();
            a.pull_batch(&keys, |_, row| rows_a.push(row.to_vec()));
            let mut rows_b = Vec::new();
            b.pull_batch_with(&keys, &mut scratch, |_, row| rows_b.push(row.to_vec()));
            assert_eq!(rows_a, rows_b);
            a.push_batch(&keys, &grads, &Sgd { lr: 0.1 });
            b.push_batch_with(&keys, &grads, &Sgd { lr: 0.1 }, &mut scratch);
            a.write_batch(&[ParamKey(2)], &[&g]);
            b.write_batch_with(&[ParamKey(2)], &[&g], &mut scratch);
            let mut single_a = [0.0f32; 4];
            let mut single_b = [0.0f32; 4];
            a.pull(ParamKey(5), &mut single_a);
            b.try_pull_with(ParamKey(5), &mut single_b, &mut scratch)
                .unwrap();
            assert_eq!(single_a, single_b);
        }
        assert_eq!(meter_a.snapshot(), meter_b.snapshot());
        let mut all_a = Vec::new();
        store_a.for_each_row(|k, row| all_a.push((k, row.to_vec())));
        let mut all_b = Vec::new();
        store_b.for_each_row(|k, row| all_b.push((k, row.to_vec())));
        assert_eq!(all_a, all_b);
    }

    #[test]
    fn zero_fault_injector_is_byte_identical_to_none() {
        let (store, topo) = setup(2);
        let plain_meter = Arc::new(TrafficMeter::new());
        let plain = PsClient::new(0, topo, store.clone(), plain_meter.clone());
        let fault_meter = Arc::new(TrafficMeter::new());
        let faulty = PsClient::new(0, topo, store.clone(), fault_meter.clone())
            .with_faults(injector(FaultPlan::default()), RetryPolicy::default());

        let keys: Vec<ParamKey> = (0..10).map(ParamKey).collect();
        let g = [0.1f32; 4];
        let grads: Vec<&[f32]> = keys.iter().map(|_| &g[..]).collect();
        for client in [&plain, &faulty] {
            let mut buf = [0.0f32; 4];
            client.pull(ParamKey(3), &mut buf);
            client.pull_batch(&keys, |_, _| {});
            client.push(ParamKey(5), &g, &Sgd { lr: 0.1 });
            client.push_batch(&keys, &grads, &Sgd { lr: 0.1 });
            client.write_batch(&keys, &grads);
        }
        assert_eq!(plain_meter.snapshot(), fault_meter.snapshot());
        assert_eq!(faulty.faults().unwrap().injector.stats().total_faults(), 0);
    }

    #[test]
    fn drops_retransmit_meter_every_attempt_then_fail() {
        let (store, topo) = setup(2);
        let meter = Arc::new(TrafficMeter::new());
        let inj = injector(FaultPlan::lossy(1, 1.0)); // every remote message lost
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let client = PsClient::new(0, topo, store, meter.clone()).with_faults(inj.clone(), policy);
        let mut buf = [0.0f32; 4];
        // Key 1 is remote for worker 0.
        let err = client.try_pull(ParamKey(1), &mut buf).unwrap_err();
        assert_eq!(err, RpcError::Dropped { attempts: 3 });
        let s = meter.snapshot();
        let msg_bytes = 16 + 8;
        assert_eq!(s.remote_messages, 3, "every attempt transited the link");
        assert_eq!(s.remote_bytes, 3 * msg_bytes);
        let f = inj.stats();
        assert_eq!(f.drops, 3);
        assert_eq!(f.retries, 2);
        assert_eq!(f.retransmitted_bytes, 2 * msg_bytes);
        assert!(f.backoff_secs > 0.0);
    }

    #[test]
    fn local_messages_never_drop() {
        let (store, topo) = setup(2);
        let meter = Arc::new(TrafficMeter::new());
        let inj = injector(FaultPlan::lossy(1, 1.0));
        let client =
            PsClient::new(0, topo, store, meter.clone()).with_faults(inj, RetryPolicy::default());
        let mut buf = [0.0f32; 4];
        // Key 0 is local for worker 0: delivered despite p = 1.
        client.try_pull(ParamKey(0), &mut buf).unwrap();
        assert_eq!(meter.snapshot().local_messages, 1);
    }

    #[test]
    fn outage_is_waited_out_in_simulated_time() {
        let (store, topo) = setup(2);
        let meter = Arc::new(TrafficMeter::new());
        let inj = injector(FaultPlan::shard_outage(0, 1, 0.0, 0.5));
        let client = PsClient::new(0, topo, store, meter.clone())
            .with_faults(inj.clone(), RetryPolicy::default());
        assert!(!client.shard_available(ParamKey(1)));
        assert!(client.shard_available(ParamKey(0)));
        let mut buf = [0.0f32; 4];
        client.try_pull(ParamKey(1), &mut buf).unwrap();
        assert!(inj.now() >= 0.5, "client slept past the outage window");
        assert!(inj.stats().outage_refusals >= 1);
        assert_eq!(
            meter.snapshot().remote_messages,
            1,
            "only the delivery is metered"
        );
        assert!(client.shard_available(ParamKey(1)));
    }

    #[test]
    fn outage_without_wait_exhausts_attempts() {
        let (store, topo) = setup(2);
        let meter = Arc::new(TrafficMeter::new());
        let inj = injector(FaultPlan::shard_outage(0, 1, 0.0, 1e9));
        let policy = RetryPolicy {
            max_attempts: 2,
            wait_for_recovery: false,
            ..RetryPolicy::default()
        };
        let client = PsClient::new(0, topo, store, meter.clone()).with_faults(inj, policy);
        let mut buf = [0.0f32; 4];
        let err = client.try_pull(ParamKey(1), &mut buf).unwrap_err();
        assert_eq!(
            err,
            RpcError::ShardUnavailable {
                shard: 1,
                attempts: 2
            }
        );
        assert_eq!(
            meter.snapshot().remote_messages,
            0,
            "refusals are not deliveries"
        );
    }

    #[test]
    fn failed_batch_applies_nothing() {
        let (store, topo) = setup(2);
        let meter = Arc::new(TrafficMeter::new());
        let inj = injector(FaultPlan::shard_outage(0, 1, 0.0, 1e9));
        let policy = RetryPolicy {
            max_attempts: 2,
            wait_for_recovery: false,
            ..RetryPolicy::default()
        };
        let client = PsClient::new(0, topo, store.clone(), meter).with_faults(inj, policy);
        store.store(ParamKey(0), &[0.0; 4]);
        store.store(ParamKey(1), &[0.0; 4]);
        let g = [1.0f32; 4];
        // Shard 0 is fine but shard 1 is down: all-or-nothing, so neither
        // gradient lands.
        let err = client
            .try_push_batch(&[ParamKey(0), ParamKey(1)], &[&g, &g], &Sgd { lr: 1.0 })
            .unwrap_err();
        assert!(matches!(err, RpcError::ShardUnavailable { shard: 1, .. }));
        let mut buf = [0.0f32; 4];
        store.pull(ParamKey(0), &mut buf);
        assert_eq!(buf, [0.0; 4], "no partial application");
    }

    #[test]
    fn corrupt_frames_are_detected_and_retransmitted_until_exhaustion() {
        let (store, topo) = setup(2);
        let meter = Arc::new(TrafficMeter::new());
        let inj = injector(FaultPlan::corrupting(1, 1.0)); // every remote frame damaged
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let client = PsClient::new(0, topo, store, meter.clone()).with_faults(inj.clone(), policy);
        let mut buf = [7.0f32; 4];
        // Key 1 is remote for worker 0.
        let err = client.try_pull(ParamKey(1), &mut buf).unwrap_err();
        assert_eq!(err, RpcError::CorruptPayload { attempts: 3 });
        assert_eq!(buf, [7.0; 4], "failed pull leaves the output untouched");
        let s = meter.snapshot();
        assert_eq!(
            s.remote_messages, 3,
            "every damaged attempt transited the link"
        );
        let f = inj.stats();
        assert_eq!(f.corrupt_frames, 3);
        assert_eq!(f.corrupt_detected, 3);
        assert_eq!(f.corrupt_ingested, 0);
        assert_eq!(f.retries, 2);
        assert!(f.backoff_secs > 0.0);
    }

    #[test]
    fn detected_corruption_repulls_clean_data() {
        let (store, topo) = setup(2);
        let meter = Arc::new(TrafficMeter::new());
        let inj = injector(FaultPlan::corrupting(9, 0.4));
        // A deep retry budget so a corrupt streak cannot exhaust a pull.
        let policy = RetryPolicy {
            max_attempts: 16,
            ..RetryPolicy::default()
        };
        let client = PsClient::new(0, topo, store.clone(), meter).with_faults(inj.clone(), policy);
        for round in 0..50u64 {
            let key = ParamKey(round % 8);
            let width = (store.row_bytes(key) / 4) as usize;
            let mut clean = vec![0.0f32; width];
            store.pull(key, &mut clean);
            let mut got = vec![0.0f32; width];
            client.try_pull(key, &mut got).unwrap();
            let same = clean
                .iter()
                .zip(&got)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "round {round}: corrupted data reached the caller");
        }
        let f = inj.stats();
        assert!(f.corrupt_frames > 0, "the plan did corrupt frames");
        assert_eq!(
            f.corrupt_detected, f.corrupt_frames,
            "every corruption was caught"
        );
        assert_eq!(f.corrupt_ingested, 0);
    }

    #[test]
    fn checksums_off_ingests_garbage_and_counts_it() {
        let (store, topo) = setup(2);
        let meter = Arc::new(TrafficMeter::new());
        let inj = injector(FaultPlan::corrupting(1, 1.0));
        let client = PsClient::new(0, topo, store.clone(), meter.clone())
            .with_faults(inj.clone(), RetryPolicy::default())
            .with_checksums(false);
        let mut clean = [0.0f32; 4];
        store.pull(ParamKey(1), &mut clean);
        let mut got = [0.0f32; 4];
        client.try_pull(ParamKey(1), &mut got).unwrap();
        assert_ne!(
            clean.map(f32::to_bits),
            got.map(f32::to_bits),
            "garbage reached the caller"
        );
        assert_eq!(
            meter.snapshot().remote_messages,
            1,
            "no retry without detection"
        );
        let f = inj.stats();
        assert_eq!(f.corrupt_frames, 1);
        assert_eq!(f.corrupt_ingested, 1);
        assert_eq!(f.corrupt_detected, 0);
    }

    #[test]
    fn checksum_toggle_is_free_without_corruption() {
        // Same lossy plan, same seed, checksums on vs off: identical meters
        // and identical fault counters — the integrity layer costs nothing
        // when frames arrive intact.
        let run = |checksums: bool| {
            let (store, topo) = setup(2);
            let meter = Arc::new(TrafficMeter::new());
            let inj = injector(FaultPlan::lossy(5, 0.3));
            let client = PsClient::new(0, topo, store, meter.clone())
                .with_faults(inj.clone(), RetryPolicy::default())
                .with_checksums(checksums);
            let keys: Vec<ParamKey> = (0..8).map(ParamKey).collect();
            let mut buf = [0.0f32; 4];
            for _ in 0..20 {
                client.pull_batch(&keys, |_, _| {});
                client.try_pull(ParamKey(1), &mut buf).unwrap();
            }
            (meter.snapshot(), inj.stats())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn split_pull_replays_the_same_rows_as_a_direct_pull() {
        let (store, topo) = setup(2);
        let meter = Arc::new(TrafficMeter::new());
        let client = PsClient::new(0, topo, store, meter.clone());
        let mut scratch = PsScratch::new();
        // Mixed widths are fine: entities and a relation key.
        let keys = [0u64, 3, 9, 1].map(ParamKey);
        let mut direct = Vec::new();
        client.pull_batch(&keys, |i, row| direct.push((i, row.to_vec())));
        let before = meter.snapshot();
        let mut rows = Vec::new();
        let delta = client
            .try_pull_batch_issue(&keys, &mut scratch, &mut rows)
            .unwrap();
        assert_eq!(
            delta,
            meter.snapshot().since(before),
            "delta is the op's own traffic"
        );
        assert!(delta.total_bytes() > 0);
        let mut replayed = Vec::new();
        client.complete_pull_batch(&keys, &rows, |i, row| replayed.push((i, row.to_vec())));
        assert_eq!(direct, replayed);
    }

    #[test]
    fn refreshed_split_pull_observes_pushes_landed_after_issue() {
        let (store, topo) = setup(2);
        let meter = Arc::new(TrafficMeter::new());
        let client = PsClient::new(0, topo, store, meter.clone());
        let mut scratch = PsScratch::new();
        let keys = [0u64, 3, 9].map(ParamKey);
        let mut rows = Vec::new();
        client
            .try_pull_batch_issue(&keys, &mut scratch, &mut rows)
            .unwrap();
        // Another worker's push lands between issue and consume.
        let g = [1.0f32; 4];
        client.push_batch(&[ParamKey(3)], &[&g], &Sgd { lr: 1.0 });
        let metered = meter.snapshot();
        client.refresh_pull_batch(&keys, &mut rows);
        assert_eq!(
            meter.snapshot(),
            metered,
            "delivery of an issued pull is free"
        );
        // The refreshed rows match a direct pull at the consume point.
        let mut direct = Vec::new();
        client.pull_batch(&keys, |_, row| direct.extend_from_slice(row));
        assert_eq!(
            rows.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            direct.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn metered_reports_exactly_one_ops_traffic() {
        let (store, topo) = setup(2);
        let meter = Arc::new(TrafficMeter::new());
        let client = PsClient::new(0, topo, store, meter.clone());
        let keys: Vec<ParamKey> = (0..5).map(ParamKey).collect();
        client.pull_batch(&keys, |_, _| {}); // unrelated earlier traffic
        let before = meter.snapshot();
        let ((), delta) = client.metered(|c| c.pull_batch(&keys, |_, _| {}));
        assert_eq!(delta, meter.snapshot().since(before));
        assert_eq!(delta.local_messages + delta.remote_messages, 2);
    }

    #[test]
    fn push_batch_rows_matches_the_slice_based_push() {
        let (store_a, topo) = setup(2);
        let (store_b, _) = setup(2);
        let meter_a = Arc::new(TrafficMeter::new());
        let meter_b = Arc::new(TrafficMeter::new());
        let a = PsClient::new(0, topo, store_a.clone(), meter_a.clone());
        let b = PsClient::new(0, topo, store_b.clone(), meter_b.clone());
        let mut scratch = PsScratch::new();
        let keys = [4u64, 1, 2, 4].map(ParamKey); // duplicate key included
        let grads: Vec<Vec<f32>> = (0..keys.len()).map(|i| vec![0.5 + i as f32; 4]).collect();
        let refs: Vec<&[f32]> = grads.iter().map(|g| g.as_slice()).collect();
        a.push_batch_with(&keys, &refs, &Sgd { lr: 0.2 }, &mut scratch);
        b.push_batch_rows(
            &keys,
            |i| grads[i].as_slice(),
            &Sgd { lr: 0.2 },
            &mut scratch,
        );
        assert_eq!(meter_a.snapshot(), meter_b.snapshot());
        let mut all_a = Vec::new();
        store_a.for_each_row(|k, row| all_a.push((k, row.to_vec())));
        let mut all_b = Vec::new();
        store_b.for_each_row(|k, row| all_b.push((k, row.to_vec())));
        assert_eq!(all_a, all_b);
    }

    fn setup_replicated(machines: usize, k: usize) -> (Arc<KvStore>, ClusterTopology) {
        let ks = KeySpace::new(8, 4);
        let router = ShardRouter::round_robin(ks, machines);
        let store = Arc::new(
            KvStore::new(router, 4, 4, 0, Init::Uniform { bound: 0.1 }, 1).with_replication(k),
        );
        (store, ClusterTopology::new(machines, 1))
    }

    fn kill_plan(shard: usize, at: f64) -> FaultPlan {
        FaultPlan {
            kills: vec![hetkg_netsim::ShardKill { shard, at }],
            ..FaultPlan::default()
        }
    }

    #[test]
    fn failover_promotes_a_backup_and_delivers() {
        let (store, topo) = setup_replicated(2, 2);
        // A write that reaches the backlog before the primary dies: the
        // promoted backup must serve it after anti-entropy catch-up.
        let marker = [7.0f32; 4];
        store.store(ParamKey(1), &marker);
        let meter = Arc::new(TrafficMeter::new());
        let liveness = Arc::new(hetkg_netsim::ShardLiveness::new(2));
        let inj = Arc::new(
            FaultInjector::new(kill_plan(1, 0.0), CostModel::gigabit(), 0)
                .with_liveness(liveness.clone()),
        );
        let client = PsClient::new(0, topo, store, meter.clone())
            .with_faults(inj.clone(), RetryPolicy::default());
        let mut buf = [0.0f32; 4];
        // Key 1 routes to shard 1, dead from t=0: the pull must fail over.
        client.try_pull(ParamKey(1), &mut buf).unwrap();
        assert_eq!(buf, marker, "promoted backup serves the caught-up value");
        let stats = inj.stats();
        assert_eq!(stats.promotions, 1);
        assert_eq!(stats.catch_up_frames, 1, "one backlogged record replayed");
        assert!(stats.catch_up_bytes > 0);
        assert_eq!(liveness.promotions(), 1);
        let events = liveness.take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].0, 1, "the dead shard was the one promoted");
        assert!(
            events[0].1 > 0.0,
            "the failed attempt against the dead primary still cost latency"
        );
        assert!(
            meter.snapshot().replication_bytes > 0,
            "catch-up traffic is metered on the replication lane"
        );
        // The new primary takes writes like any other shard.
        client
            .try_push(ParamKey(1), &[0.5; 4], &Sgd { lr: 1.0 })
            .unwrap();
        client.try_pull(ParamKey(1), &mut buf).unwrap();
        assert_eq!(buf, [6.5f32; 4]);
        assert_eq!(inj.stats().promotions, 1, "no second promotion");
    }

    #[test]
    fn failover_without_replication_is_shard_lost() {
        let (store, topo) = setup(2);
        let meter = Arc::new(TrafficMeter::new());
        let liveness = Arc::new(hetkg_netsim::ShardLiveness::new(2));
        let inj = Arc::new(
            FaultInjector::new(kill_plan(1, 0.0), CostModel::gigabit(), 0).with_liveness(liveness),
        );
        let client =
            PsClient::new(0, topo, store, meter.clone()).with_faults(inj, RetryPolicy::default());
        let mut buf = [0.0f32; 4];
        let err = client.try_pull(ParamKey(1), &mut buf).unwrap_err();
        assert_eq!(err, RpcError::ShardLost { shard: 1 });
    }

    #[test]
    fn hedged_pulls_fire_under_a_straggler_episode() {
        let (store, topo) = setup_replicated(2, 2);
        let meter = Arc::new(TrafficMeter::new());
        // No drops/corruption: only a straggler window after a calibration
        // period of unperturbed pulls (each remote pull costs ~100 us).
        let plan = FaultPlan {
            slow_episodes: vec![hetkg_netsim::SlowEpisode {
                start: 500e-6,
                end: 1.0,
                latency_factor: 4.0,
            }],
            ..FaultPlan::default()
        };
        let inj = Arc::new(FaultInjector::new(plan, CostModel::gigabit(), 0));
        let client = PsClient::new(0, topo, store, meter.clone())
            .with_faults(inj.clone(), RetryPolicy::default());
        let mut buf = [0.0f32; 4];
        let calm = client
            .metered(|c| c.try_pull(ParamKey(1), &mut buf).unwrap())
            .1;
        assert_eq!(
            calm.replication_bytes, 0,
            "unperturbed pulls never hedge: the observed/predicted ratio is 1"
        );
        for _ in 0..40 {
            client.try_pull(ParamKey(1), &mut buf).unwrap();
        }
        let stats = inj.stats();
        assert!(stats.slow_messages > 0, "the episode was entered");
        assert!(stats.hedged_pulls > 0, "slow pulls past threshold hedge");
        assert_eq!(stats.hedged_wins + stats.hedged_losses, stats.hedged_pulls);
        assert!(
            stats.hedged_wins > 0,
            "a 4x straggler loses to an unperturbed backup"
        );
        assert!(meter.snapshot().replication_bytes > 0);
        assert!(
            stats.hedged_pulls < stats.slow_messages,
            "the adaptive threshold re-calibrates and stops hedging"
        );
    }

    fn overload_plan(shard: usize, end: f64, capacity: u32) -> FaultPlan {
        FaultPlan {
            overloads: vec![hetkg_netsim::OverloadWindow {
                shard,
                start: 0.0,
                end,
                queue_capacity: capacity,
                drain_rate: 1_000.0,
                latency_per_inflight: 100e-6,
            }],
            ..FaultPlan::default()
        }
    }

    use crate::overload::{BreakerConfig, OverloadControl, RetryBudgetConfig};

    #[test]
    fn overload_sheds_spend_the_retry_budget_and_still_deliver() {
        let (store, topo) = setup(2);
        let meter = Arc::new(TrafficMeter::new());
        let inj = injector(overload_plan(1, 1.0, 2));
        // A deliberately generous bucket: the point here is spend-and-
        // deliver, not denial (the stingier default is exercised below).
        let generous = RetryBudgetConfig {
            initial_millitokens: 20_000,
            earn_millitokens: 100,
            cap_millitokens: 50_000,
        };
        let ctl = Arc::new(OverloadControl::from_configs(2, Some(generous), None).unwrap());
        let client = PsClient::new(0, topo, store, meter)
            .with_faults(inj.clone(), RetryPolicy::default())
            .with_overload(ctl.clone());
        let mut buf = [0.0f32; 4];
        for _ in 0..20 {
            client.try_pull(ParamKey(1), &mut buf).unwrap();
        }
        let s = inj.stats();
        assert!(s.overload_sheds > 0, "the queue filled and shed");
        assert!(
            s.overload_throttled > 0,
            "queued requests paid extra latency"
        );
        assert!(s.overload_extra_secs > 0.0);
        let budget = ctl.budget.as_ref().unwrap();
        assert!(budget.retries_spent() > 0, "sheds were retried on budget");
        assert_eq!(s.retries_denied, 0, "a generous budget never runs dry here");
    }

    #[test]
    fn dry_budget_sheds_pushes_and_waits_out_pulls() {
        let (store, topo) = setup(2);
        let meter = Arc::new(TrafficMeter::new());
        // Capacity 0: every in-window request to shard 1 is shed.
        let inj = injector(overload_plan(1, 2e-3, 0));
        let dry = RetryBudgetConfig {
            initial_millitokens: 0,
            earn_millitokens: 0,
            cap_millitokens: 0,
        };
        let ctl = Arc::new(OverloadControl::from_configs(2, Some(dry), None).unwrap());
        let client = PsClient::new(0, topo, store, meter)
            .with_faults(inj.clone(), RetryPolicy::default())
            .with_overload(ctl);
        // Sheddable write, dry budget: typed error, immediately.
        let err = client
            .try_push(ParamKey(1), &[0.1; 4], &Sgd { lr: 0.1 })
            .unwrap_err();
        assert!(matches!(err, RpcError::Overloaded { shard: 1, .. }));
        // Required read, dry budget: waits for relief instead of erroring.
        let mut buf = [0.0f32; 4];
        client.try_pull(ParamKey(1), &mut buf).unwrap();
        let s = inj.stats();
        assert!(s.retries_denied >= 2, "both ops saw a dry budget");
        assert_eq!(s.retries, 0, "nothing was retried on credit");
        assert!(inj.now() >= 2e-3, "the pull slept past the overload window");
    }

    #[test]
    fn breaker_cycles_open_halfopen_closed_and_fast_fails_writes() {
        let (store, topo) = setup(2);
        let meter = Arc::new(TrafficMeter::new());
        let inj = injector(overload_plan(1, 1e-3, 0));
        let breaker = BreakerConfig {
            failure_threshold: 1,
            cooldown_secs: 2e-3, // cooldown outlasts the overload window
            latency_ratio: 3.0,
        };
        let ctl = Arc::new(OverloadControl::from_configs(2, None, Some(breaker)).unwrap());
        let client = PsClient::new(0, topo, store, meter)
            .with_faults(inj.clone(), RetryPolicy::default())
            .with_overload(ctl.clone());
        // First push: shed at the queue, which trips the breaker; the next
        // gate check fails fast with the typed error.
        let err = client
            .try_push(ParamKey(1), &[0.1; 4], &Sgd { lr: 0.1 })
            .unwrap_err();
        assert!(matches!(err, RpcError::Overloaded { shard: 1, .. }));
        assert!(client.breaker_tripped(1));
        assert!(!client.shard_healthy(ParamKey(1)));
        assert!(client.shard_healthy(ParamKey(0)), "shard 0 unaffected");
        // Second push hits the open breaker without even reaching the queue.
        let before = inj.stats().overload_sheds;
        let err = client
            .try_push(ParamKey(1), &[0.1; 4], &Sgd { lr: 0.1 })
            .unwrap_err();
        assert!(matches!(err, RpcError::Overloaded { shard: 1, .. }));
        assert_eq!(inj.stats().overload_sheds, before, "fast fail sent nothing");
        assert!(inj.stats().breaker_fast_fails > 0);
        // A required pull sleeps out the cooldown, probes, and closes the
        // breaker (the window has ended by then).
        let mut buf = [0.0f32; 4];
        client.try_pull(ParamKey(1), &mut buf).unwrap();
        let br = ctl.breakers.as_ref().unwrap();
        assert!(br.opens() >= 1, "Closed -> Open happened");
        assert_eq!(br.half_opens(), 1, "Open -> HalfOpen probe");
        assert_eq!(br.closes(), 1, "HalfOpen -> Closed on probe success");
        assert!(!client.breaker_tripped(1));
        assert!(br.brownout_secs() > 0.0);
    }

    #[test]
    fn retry_budget_cuts_retransmitted_bytes_versus_the_storm() {
        let run = |budget: Option<RetryBudgetConfig>| {
            let (store, topo) = setup(2);
            let meter = Arc::new(TrafficMeter::new());
            let inj = injector(overload_plan(1, 10e-3, 2));
            let mut client = PsClient::new(0, topo, store, meter)
                .with_faults(inj.clone(), RetryPolicy::default());
            if let Some(cfg) = budget {
                let ctl = Arc::new(OverloadControl::from_configs(2, Some(cfg), None).unwrap());
                client = client.with_overload(ctl);
            }
            let mut buf = [0.0f32; 4];
            for _ in 0..30 {
                client.try_pull(ParamKey(1), &mut buf).unwrap();
            }
            inj.stats()
        };
        // A small budget: a few paid retries, then patience.
        let tight = RetryBudgetConfig {
            initial_millitokens: 3_000,
            earn_millitokens: 0,
            cap_millitokens: 3_000,
        };
        let with_budget = run(Some(tight));
        let storm = run(None);
        assert!(storm.overload_sheds > 0);
        assert!(with_budget.overload_sheds > 0);
        assert!(
            with_budget.retransmitted_bytes < storm.retransmitted_bytes,
            "budget {} vs storm {}",
            with_budget.retransmitted_bytes,
            storm.retransmitted_bytes
        );
        assert!(with_budget.retries_denied > 0, "the tight budget ran dry");
    }

    #[test]
    fn clean_run_with_overload_control_is_bit_identical() {
        let run = |protected: bool| {
            let (store, topo) = setup(2);
            let meter = Arc::new(TrafficMeter::new());
            let inj = injector(FaultPlan::default());
            let mut client = PsClient::new(0, topo, store.clone(), meter.clone())
                .with_faults(inj.clone(), RetryPolicy::default());
            if protected {
                let ctl = Arc::new(
                    OverloadControl::from_configs(
                        2,
                        Some(RetryBudgetConfig::default()),
                        Some(BreakerConfig::default()),
                    )
                    .unwrap(),
                );
                client = client.with_overload(ctl);
            }
            let keys: Vec<ParamKey> = (0..8).map(ParamKey).collect();
            let g = [0.1f32; 4];
            let grads: Vec<&[f32]> = keys.iter().map(|_| &g[..]).collect();
            let mut buf = [0.0f32; 4];
            for _ in 0..10 {
                client.pull_batch(&keys, |_, _| {});
                client.try_pull(ParamKey(1), &mut buf).unwrap();
                client.push_batch(&keys, &grads, &Sgd { lr: 0.1 });
            }
            let mut rows = Vec::new();
            store.for_each_row(|k, row| {
                rows.push((k, row.iter().map(|v| v.to_bits()).collect::<Vec<_>>()))
            });
            (meter.snapshot(), inj.stats(), inj.now(), rows)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn replication_on_fault_free_run_only_adds_replication_traffic() {
        let run = |k: usize| {
            let (store, topo) = setup_replicated(2, k);
            let meter = Arc::new(TrafficMeter::new());
            let inj = injector(FaultPlan::default());
            let client = PsClient::new(0, topo, store.clone(), meter.clone())
                .with_faults(inj, RetryPolicy::default());
            let mut scratch = PsScratch::new();
            let keys: Vec<ParamKey> = (0..8).map(ParamKey).collect();
            let mut buf = [0.0f32; 4];
            for round in 0..20 {
                for &k in &keys {
                    client.try_pull(k, &mut buf).unwrap();
                }
                let g = vec![0.01 * (round as f32 + 1.0); 4];
                let refs: Vec<&[f32]> = keys.iter().map(|_| g.as_slice()).collect();
                client
                    .try_push_batch_with(&keys, &refs, &Sgd { lr: 0.1 }, &mut scratch)
                    .unwrap();
            }
            let mut rows = Vec::new();
            store.for_each_row(|k, row| {
                rows.push((k, row.iter().map(|v| v.to_bits()).collect::<Vec<_>>()))
            });
            (meter.snapshot(), rows)
        };
        let (off, rows_off) = run(1);
        let (on, rows_on) = run(2);
        assert_eq!(
            rows_off, rows_on,
            "replication never changes primary values"
        );
        assert_eq!(off.replication_bytes, 0);
        assert_eq!(off.replication_messages, 0);
        assert!(on.replication_bytes > 0, "batches shipped to the backup");
        assert_eq!(
            TrafficSnapshot {
                replication_bytes: 0,
                replication_messages: 0,
                ..on
            },
            off,
            "worker-lane traffic is bit-identical with replication on"
        );
    }

    #[test]
    fn compressed_push_cuts_push_lane_bytes_and_applies_decoded_grads() {
        let (store, topo) = setup(2);
        let meter = Arc::new(TrafficMeter::new());
        let client = PsClient::new(0, topo, store.clone(), meter.clone());
        let mut scratch = PsScratch::new();
        scratch.set_compression(CompressionMode::Int8);
        let keys: Vec<ParamKey> = (0..6).map(ParamKey).collect();
        let mut init = vec![[0.0f32; 4]; keys.len()];
        for (i, &k) in keys.iter().enumerate() {
            store.pull(k, &mut init[i]);
        }
        let g = [0.4f32, -0.2, 0.1, 0.05];
        let grads: Vec<&[f32]> = keys.iter().map(|_| &g[..]).collect();
        client
            .try_push_batch_with(&keys, &grads, &Sgd { lr: 1.0 }, &mut scratch)
            .unwrap();
        let s = meter.snapshot();
        assert_eq!(s.push_messages, 2, "one frame per touched shard");
        assert_eq!(s.push_raw_bytes, 6 * (16 + 8));
        assert_eq!(
            s.push_wire_bytes,
            6 * (8 + 8),
            "per row: 8-byte key + 4-byte scale + 4 int8 codes"
        );
        assert_eq!(
            s.local_bytes + s.remote_bytes,
            s.push_wire_bytes,
            "the worker lanes carry the encoded bytes, not the dense ones"
        );
        let mut buf = [0.0f32; 4];
        for (i, &k) in keys.iter().enumerate() {
            store.pull(k, &mut buf);
            for d in 0..4 {
                let applied = init[i][d] - buf[d];
                assert!(
                    (applied - g[d]).abs() <= 0.4 / 127.0 + 1e-6,
                    "key {i} dim {d}: applied {applied} vs submitted {}",
                    g[d]
                );
            }
        }
        let stats = scratch.compression_stats().unwrap();
        assert_eq!(stats.rows, 6);
        assert_eq!(stats.frames, 2);
        assert!(stats.ratio() > 1.4, "ratio {}", stats.ratio());
    }

    #[test]
    fn error_feedback_keeps_repeated_pushes_unbiased() {
        let (store, topo) = setup(1);
        let meter = Arc::new(TrafficMeter::new());
        let client = PsClient::new(0, topo, store.clone(), meter);
        let mut scratch = PsScratch::new();
        scratch.set_compression(CompressionMode::Int8);
        let key = ParamKey(0);
        store.store(key, &[0.0; 4]);
        let g = [0.013f32, -0.027, 0.0031, 0.009];
        for _ in 0..200 {
            client
                .try_push_with(key, &g, &Sgd { lr: 1.0 }, &mut scratch)
                .unwrap();
        }
        let mut buf = [0.0f32; 4];
        store.pull(key, &mut buf);
        for d in 0..4 {
            let want = -200.0 * g[d];
            // Without error feedback each step could lose up to half a
            // quantization step, 200× over; with it only the final
            // residual — at most one step's rounding error — is
            // outstanding.
            assert!(
                (buf[d] - want).abs() <= 1e-3,
                "dim {d}: {} drifted from {want}",
                buf[d]
            );
        }
    }

    #[test]
    fn topk_pushes_apply_only_the_largest_coordinates() {
        let (store, topo) = setup(1);
        let meter = Arc::new(TrafficMeter::new());
        let client = PsClient::new(0, topo, store.clone(), meter);
        let mut scratch = PsScratch::new();
        scratch.set_compression(CompressionMode::TopK);
        let key = ParamKey(0);
        store.store(key, &[0.0; 4]);
        let g = [0.5f32, -0.01, 0.02, -0.003];
        client
            .try_push_with(key, &g, &Sgd { lr: 1.0 }, &mut scratch)
            .unwrap();
        let mut buf = [0.0f32; 4];
        store.pull(key, &mut buf);
        let nonzero = buf.iter().filter(|v| **v != 0.0).count();
        assert_eq!(nonzero, 1, "k = max(1, 4/4) coordinate survives the wire");
        assert!((buf[0] + 0.5).abs() <= 0.5 / 127.0 + 1e-6, "got {}", buf[0]);
        // The dropped mass waits in the residual, not in the void.
        let mut acc = [0.0f32; 4];
        assert!(scratch.fold_residual(key, &mut acc));
        assert!((acc[1] + 0.01).abs() < 1e-6, "got {}", acc[1]);
        assert!(!scratch.fold_residual(key, &mut acc), "folded once");
    }

    #[test]
    fn single_key_push_with_scratch_matches_fresh_calls() {
        let (store_a, topo) = setup(2);
        let (store_b, _) = setup(2);
        let meter_a = Arc::new(TrafficMeter::new());
        let meter_b = Arc::new(TrafficMeter::new());
        let a = PsClient::new(0, topo, store_a.clone(), meter_a.clone());
        let b = PsClient::new(0, topo, store_b.clone(), meter_b.clone());
        let mut scratch = PsScratch::new();
        let g = [0.25f32, -0.5, 0.125, 0.0625];
        for round in 0..5 {
            for k in [1u64, 0, 3, 9].map(ParamKey) {
                a.push(k, &g, &Sgd { lr: 0.1 });
                b.try_push_with(k, &g, &Sgd { lr: 0.1 }, &mut scratch)
                    .unwrap();
            }
            let mut ra = [0.0f32; 4];
            let mut rb = [0.0f32; 4];
            a.pull(ParamKey(round), &mut ra);
            b.try_pull_with(ParamKey(round), &mut rb, &mut scratch)
                .unwrap();
            assert_eq!(ra, rb);
        }
        assert_eq!(meter_a.snapshot(), meter_b.snapshot());
        let mut all_a = Vec::new();
        store_a.for_each_row(|k, row| all_a.push((k, row.to_vec())));
        let mut all_b = Vec::new();
        store_b.for_each_row(|k, row| all_b.push((k, row.to_vec())));
        assert_eq!(all_a, all_b);
    }

    #[test]
    fn compress_off_scratch_is_identical_to_a_plain_scratch() {
        let run = |set_off: bool| {
            let (store, topo) = setup(2);
            let meter = Arc::new(TrafficMeter::new());
            let client = PsClient::new(0, topo, store.clone(), meter.clone());
            let mut scratch = PsScratch::new();
            if set_off {
                scratch.set_compression(CompressionMode::Off);
            }
            let keys: Vec<ParamKey> = (0..8).map(ParamKey).collect();
            let g = [0.1f32; 4];
            let grads: Vec<&[f32]> = keys.iter().map(|_| &g[..]).collect();
            for _ in 0..4 {
                client.push_batch_with(&keys, &grads, &Sgd { lr: 0.1 }, &mut scratch);
                client
                    .try_push_with(ParamKey(2), &g, &Sgd { lr: 0.1 }, &mut scratch)
                    .unwrap();
            }
            assert!(scratch.compression_stats().is_none());
            let mut rows = Vec::new();
            store.for_each_row(|k, row| {
                rows.push((k, row.iter().map(|v| v.to_bits()).collect::<Vec<_>>()))
            });
            (meter.snapshot(), rows)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn corrupted_compressed_frames_are_detected_and_never_ingested() {
        // The chaos differential for compressed frames: under a corrupting
        // plan the encoded-byte checksum must catch every damaged frame and
        // retransmission must deliver the sealed bytes, so the store ends
        // bit-identical to a fault-free run of the same compressed pushes.
        let run = |plan: FaultPlan| {
            let (store, topo) = setup(2);
            let meter = Arc::new(TrafficMeter::new());
            let inj = injector(plan);
            let policy = RetryPolicy {
                max_attempts: 64,
                ..RetryPolicy::default()
            };
            let client = PsClient::new(0, topo, store.clone(), meter.clone())
                .with_faults(inj.clone(), policy);
            let mut scratch = PsScratch::new();
            scratch.set_compression(CompressionMode::TopK);
            let keys: Vec<ParamKey> = (0..8).map(ParamKey).collect();
            for round in 0..12 {
                let g = vec![0.01 * (round as f32 + 1.0), -0.02, 0.005, 0.001];
                let refs: Vec<&[f32]> = keys.iter().map(|_| g.as_slice()).collect();
                client
                    .try_push_batch_with(&keys, &refs, &Sgd { lr: 0.1 }, &mut scratch)
                    .unwrap();
            }
            let mut rows = Vec::new();
            store.for_each_row(|k, row| {
                rows.push((k, row.iter().map(|v| v.to_bits()).collect::<Vec<_>>()))
            });
            (rows, inj.stats())
        };
        let (clean, _) = run(FaultPlan::default());
        let (faulty, stats) = run(FaultPlan::corrupting(9, 0.5));
        assert!(stats.corrupt_frames > 0, "the plan did corrupt frames");
        assert_eq!(
            stats.corrupt_detected, stats.corrupt_frames,
            "the encoded-byte checksum caught every damaged frame"
        );
        assert_eq!(stats.corrupt_ingested, 0);
        assert_eq!(
            clean, faulty,
            "retransmission delivered the sealed bytes bit for bit"
        );
    }
}

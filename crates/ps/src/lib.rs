//! The parameter server (PS) substrate: a sharded key→embedding store with
//! server-side optimizers and metered push/pull, mirroring the co-located
//! PS architecture HET-KG builds on (DGL-KE-style KVStore).
//!
//! * [`kvstore::KvStore`] — sharded dense storage; one shard per simulated
//!   machine, guarded by `parking_lot` locks (shared-memory access for
//!   co-located workers);
//! * [`optimizer`] — AdaGrad (the paper's choice) and SGD, applied *at the
//!   server* on push, exactly like Algorithm 4;
//! * [`client::PsClient`] — a worker-side handle that routes pulls/pushes to
//!   the right shard and meters local vs remote traffic;
//! * [`queue::AsyncServer`] — Algorithm 4's message queue: a consumer
//!   thread applying fire-and-forget gradient pushes;
//! * [`error`] — typed RPC failures ([`RpcError`], [`ServerGone`]) and the
//!   [`RetryPolicy`] used when a fault injector is attached to the client;
//! * [`overload`] — overload protection: a run-global [`RetryBudget`] and
//!   per-shard circuit [`ShardBreakers`], shared by workers via
//!   [`OverloadControl`] so retries stop amplifying a flash crowd.

//!
//! # Example: a two-shard store with metered pulls
//!
//! ```
//! use hetkg_ps::{KvStore, PsClient, ShardRouter};
//! use hetkg_ps::optimizer::Sgd;
//! use hetkg_embed::init::Init;
//! use hetkg_kgraph::{KeySpace, ParamKey};
//! use hetkg_netsim::{ClusterTopology, TrafficMeter};
//! use std::sync::Arc;
//!
//! let ks = KeySpace::new(10, 2);
//! let store = Arc::new(KvStore::new(
//!     ShardRouter::round_robin(ks, 2), 4, 4, 0, Init::Xavier, 7,
//! ));
//! let meter = Arc::new(TrafficMeter::new());
//! let client = PsClient::new(0, ClusterTopology::new(2, 1), store, meter.clone());
//!
//! let mut row = [0.0f32; 4];
//! client.pull(ParamKey(0), &mut row);          // local (shard 0)
//! client.pull(ParamKey(1), &mut row);          // remote (shard 1)
//! client.push(ParamKey(1), &[0.1; 4], &Sgd { lr: 0.1 });
//! let t = meter.snapshot();
//! assert_eq!(t.local_messages, 1);
//! assert_eq!(t.remote_messages, 2);
//! ```

pub mod client;
pub mod compress;
pub mod error;
pub mod kvstore;
pub mod optimizer;
pub mod overload;
pub mod queue;
pub mod router;
pub mod server;
pub mod transport;

pub use client::{FaultBinding, PsClient, PsScratch};
pub use compress::PushCompressor;
pub use error::{RetryPolicy, RpcError, ServerGone};
pub use kvstore::{KvStore, ReplicationFlush};
pub use optimizer::{AdaGrad, Optimizer, Sgd};
pub use overload::{
    BreakerConfig, Gate, OverloadControl, RetryBudget, RetryBudgetConfig, ShardBreakers,
};
pub use queue::AsyncServer;
pub use router::{BatchPlan, ShardRouter};
pub use server::{serve, ProcessCluster, ShardListener, ShardServerConfig, SocketMode};
pub use transport::{FrameOp, ProcessTransport, ServerAddr, SimTransport, Transport};

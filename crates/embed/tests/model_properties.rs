//! Property-based tests over every KGE model: gradients match finite
//! differences at random points, scores are finite, and structural
//! symmetries hold.

use hetkg_embed::gradcheck::check_model_grads;
use hetkg_embed::models::ModelKind;
use proptest::prelude::*;

fn arb_unit_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-0.9f32..0.9, len..=len)
}

/// Random embeddings of the right widths for a model kind at `dim`.
fn model_inputs(
    kind: ModelKind,
    dim: usize,
) -> impl Strategy<Value = (Vec<f32>, Vec<f32>, Vec<f32>)> {
    let probe = kind.build(dim);
    let (ed, rd) = (probe.entity_dim(), probe.relation_dim());
    (arb_unit_vec(ed), arb_unit_vec(rd), arb_unit_vec(ed))
}

macro_rules! model_property_tests {
    ($($name:ident => $kind:expr),* $(,)?) => {
        $(
            mod $name {
                use super::*;

                proptest! {
                    #![proptest_config(ProptestConfig::with_cases(24))]

                    #[test]
                    fn scores_are_finite((h, r, t) in model_inputs($kind, 5)) {
                        let m = $kind.build(5);
                        let s = m.score(&h, &r, &t);
                        prop_assert!(s.is_finite(), "score {s}");
                    }

                    #[test]
                    fn gradients_match_finite_differences(
                        (h, r, t) in model_inputs($kind, 5)
                    ) {
                        let m = $kind.build(5);
                        // L1's kinks make finite differences unreliable when a
                        // residual coordinate is near zero; skip those points.
                        if m.name() == "TransE-L1" {
                            let near_kink = h.iter().zip(&r).zip(&t)
                                .any(|((&a, &b), &c)| (a + b - c).abs() < 0.05);
                            if near_kink {
                                return Ok(());
                            }
                        }
                        if let Err(e) = check_model_grads(m.as_ref(), &h, &r, &t) {
                            return Err(TestCaseError::fail(e));
                        }
                    }

                    #[test]
                    fn zero_dscore_produces_zero_gradient(
                        (h, r, t) in model_inputs($kind, 5)
                    ) {
                        let m = $kind.build(5);
                        let mut gh = vec![0.0; h.len()];
                        let mut gr = vec![0.0; r.len()];
                        let mut gt = vec![0.0; t.len()];
                        m.grad(&h, &r, &t, 0.0, &mut gh, &mut gr, &mut gt);
                        prop_assert!(gh.iter().chain(&gr).chain(&gt).all(|&g| g == 0.0));
                    }
                }
            }
        )*
    };
}

model_property_tests! {
    transe_l1 => ModelKind::TransEL1,
    transe_l2 => ModelKind::TransEL2,
    transh => ModelKind::TransH,
    transr => ModelKind::TransR,
    transd => ModelKind::TransD,
    distmult => ModelKind::DistMult,
    complex => ModelKind::ComplEx,
    rescal => ModelKind::Rescal,
    hole => ModelKind::HolE,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// DistMult is symmetric in head/tail for every input.
    #[test]
    fn distmult_symmetry(h in arb_unit_vec(6), r in arb_unit_vec(6), t in arb_unit_vec(6)) {
        let m = ModelKind::DistMult.build(6);
        prop_assert!((m.score(&h, &r, &t) - m.score(&t, &r, &h)).abs() < 1e-5);
    }

    /// TransE-L2 scores are ≤ 0 and exactly 0 only for perfect translations.
    #[test]
    fn transe_scores_are_nonpositive(
        h in arb_unit_vec(4),
        r in arb_unit_vec(4),
        t in arb_unit_vec(4),
    ) {
        let m = ModelKind::TransEL2.build(4);
        prop_assert!(m.score(&h, &r, &t) <= 0.0);
    }
}

//! Robustness tests for the checkpoint format: every error path on
//! corrupted and truncated files, and v1 ↔ v2 compatibility.

use bytes::Bytes;
use hetkg_embed::checkpoint::{Checkpoint, CheckpointError, TrainState};
use hetkg_embed::init::Init;
use hetkg_embed::storage::EmbeddingTable;

fn table(rows: usize, dim: usize, seed: u64) -> EmbeddingTable {
    let mut t = EmbeddingTable::zeros(rows, dim);
    Init::Uniform { bound: 0.5 }.fill(&mut t, seed);
    t
}

fn v1() -> Checkpoint {
    Checkpoint::new(table(9, 6, 1), table(4, 6, 2))
}

fn v2() -> Checkpoint {
    Checkpoint::with_state(
        table(9, 6, 1),
        table(4, 6, 2),
        TrainState {
            epoch: 3,
            optimizer: "AdaGrad { lr: 0.1 }".into(),
            entity_state: table(9, 6, 3),
            relation_state: table(4, 6, 4),
        },
    )
}

fn tmp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("hetkg-ckrob-{}-{tag}.bin", std::process::id()))
}

#[test]
fn bad_magic_on_disk() {
    let path = tmp_path("magic");
    let mut raw = v1().to_bytes().unwrap().to_vec();
    raw[0] ^= 0xFF;
    std::fs::write(&path, &raw).unwrap();
    let err = Checkpoint::load(&path).unwrap_err();
    assert!(matches!(err, CheckpointError::BadMagic), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_version_on_disk() {
    let path = tmp_path("version");
    let mut raw = v2().to_bytes().unwrap().to_vec();
    raw[8] = 77; // version field follows the 8-byte magic
    std::fs::write(&path, &raw).unwrap();
    let err = Checkpoint::load(&path).unwrap_err();
    assert!(matches!(err, CheckpointError::BadVersion(77)), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_file_is_io_error() {
    let err = Checkpoint::load(&tmp_path("does-not-exist")).unwrap_err();
    assert!(matches!(err, CheckpointError::Io(_)), "{err}");
}

#[test]
fn every_truncation_point_is_rejected_v1() {
    let full = v1().to_bytes().unwrap();
    // Any strict prefix must fail with BadMagic (couldn't even read the
    // header) or Truncated — never panic, never succeed.
    for cut in 0..full.len() {
        let err = Checkpoint::from_bytes(full.slice(..cut)).unwrap_err();
        assert!(
            matches!(err, CheckpointError::BadMagic | CheckpointError::Truncated),
            "prefix of {cut} bytes gave {err}"
        );
    }
    assert!(Checkpoint::from_bytes(full).is_ok());
}

#[test]
fn every_truncation_point_is_rejected_v2() {
    let full = v2().to_bytes().unwrap();
    for cut in 0..full.len() {
        let err = Checkpoint::from_bytes(full.slice(..cut)).unwrap_err();
        assert!(
            matches!(err, CheckpointError::BadMagic | CheckpointError::Truncated),
            "prefix of {cut} bytes gave {err}"
        );
    }
    assert!(Checkpoint::from_bytes(full).is_ok());
}

#[test]
fn zero_dims_are_rejected() {
    let mut raw = v1().to_bytes().unwrap().to_vec();
    // entity dim lives after magic(8) + version(4) + ent_rows(8).
    raw[20..24].copy_from_slice(&0u32.to_le_bytes());
    let err = Checkpoint::from_bytes(Bytes::from(raw)).unwrap_err();
    assert!(matches!(err, CheckpointError::Truncated), "{err}");
}

#[test]
fn oversized_shape_claims_are_rejected() {
    // A header claiming more rows than the payload carries must fail
    // cleanly instead of over-reading.
    let mut raw = v1().to_bytes().unwrap().to_vec();
    raw[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
    let err = Checkpoint::from_bytes(Bytes::from(raw)).unwrap_err();
    assert!(matches!(err, CheckpointError::Truncated), "{err}");
}

#[test]
fn v2_loader_reads_v1_files() {
    let path = tmp_path("forward");
    let ck = v1();
    ck.save(&path).unwrap();
    let back = Checkpoint::load(&path).unwrap();
    assert_eq!(back.entities, ck.entities);
    assert_eq!(back.relations, ck.relations);
    assert!(back.train_state.is_none(), "v1 files carry no train state");
    std::fs::remove_file(&path).ok();
}

#[test]
fn v2_round_trips_epoch_and_optimizer_state() {
    let path = tmp_path("v2rt");
    let ck = v2();
    ck.save(&path).unwrap();
    let back = Checkpoint::load(&path).unwrap();
    assert_eq!(back, ck);
    let ts = back.train_state.unwrap();
    assert_eq!(ts.epoch, 3);
    assert_eq!(ts.optimizer, "AdaGrad { lr: 0.1 }");
    assert_eq!(ts.entity_state.rows(), 9);
    assert_eq!(ts.relation_state.rows(), 4);
    std::fs::remove_file(&path).ok();
}

#[test]
fn flipped_payload_bytes_still_parse_but_differ() {
    // In the legacy v1/v2 encodings payload corruption is not detectable
    // (no digest) — it must parse without crashing, just to different
    // values. The checked v3 format closes this hole (next test).
    let mut raw = v2().to_bytes().unwrap().to_vec();
    let last = raw.len() - 1;
    raw[last] ^= 0xFF;
    let back = Checkpoint::from_bytes(Bytes::from(raw)).unwrap();
    assert_ne!(back, v2());
}

#[test]
fn v3_catches_the_flip_v2_cannot_see() {
    // The exact same last-byte flip, applied to the checked encoding, is a
    // typed checksum error instead of silently different embeddings.
    let mut raw = v2().to_bytes_checked().unwrap().to_vec();
    let last = raw.len() - 1;
    raw[last] ^= 0xFF;
    let err = Checkpoint::from_bytes(Bytes::from(raw)).unwrap_err();
    assert!(
        matches!(err, CheckpointError::ChecksumMismatch { .. }),
        "{err}"
    );
}

#[test]
fn saved_files_validate_end_to_end() {
    // `save` writes the checked format; a byte of rot anywhere in the file
    // is caught at load time.
    let path = tmp_path("rot");
    v2().save(&path).unwrap();
    let clean = std::fs::read(&path).unwrap();
    for pos in [12, clean.len() / 2, clean.len() - 1] {
        let mut rotted = clean.clone();
        rotted[pos] ^= 0x40;
        std::fs::write(&path, &rotted).unwrap();
        assert!(
            Checkpoint::load(&path).is_err(),
            "rot at byte {pos} went unnoticed"
        );
    }
    std::fs::remove_file(&path).ok();
}

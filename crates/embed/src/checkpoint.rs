//! Embedding checkpointing: save and load dense tables.
//!
//! A checkpoint is two tables (entities, relations) in a simple versioned
//! binary format — magic, version, shapes, then little-endian `f32` rows.
//! Training runs use it to persist the final model; the evaluation tooling
//! loads it back for offline link prediction.

use crate::storage::EmbeddingTable;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"HETKGCK\0";
const VERSION: u32 = 1;

/// Errors from reading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Not a checkpoint file (bad magic).
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Header shape disagrees with payload length.
    Truncated,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "io error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a HET-KG checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint is truncated"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// A pair of embedding tables (the model parameters) with serialization.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Entity rows, indexed by entity id.
    pub entities: EmbeddingTable,
    /// Relation rows, indexed by relation id.
    pub relations: EmbeddingTable,
}

impl Checkpoint {
    /// Wrap two tables.
    pub fn new(entities: EmbeddingTable, relations: EmbeddingTable) -> Self {
        Self { entities, relations }
    }

    /// Serialize to bytes.
    pub fn to_bytes(&self) -> Bytes {
        let payload = 4 * (self.entities.as_slice().len() + self.relations.as_slice().len());
        let mut buf = BytesMut::with_capacity(8 + 4 + 4 * 4 + payload);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(self.entities.rows() as u64);
        buf.put_u32_le(self.entities.dim() as u32);
        buf.put_u64_le(self.relations.rows() as u64);
        buf.put_u32_le(self.relations.dim() as u32);
        for &v in self.entities.as_slice() {
            buf.put_f32_le(v);
        }
        for &v in self.relations.as_slice() {
            buf.put_f32_le(v);
        }
        buf.freeze()
    }

    /// Deserialize from bytes.
    pub fn from_bytes(mut data: Bytes) -> Result<Self, CheckpointError> {
        if data.remaining() < 8 + 4 || &data.copy_to_bytes(8)[..] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = data.get_u32_le();
        if version != VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        if data.remaining() < 2 * (8 + 4) {
            return Err(CheckpointError::Truncated);
        }
        let ent_rows = data.get_u64_le() as usize;
        let ent_dim = data.get_u32_le() as usize;
        let rel_rows = data.get_u64_le() as usize;
        let rel_dim = data.get_u32_le() as usize;
        let need = 4 * (ent_rows * ent_dim + rel_rows * rel_dim);
        if data.remaining() < need || ent_dim == 0 || rel_dim == 0 {
            return Err(CheckpointError::Truncated);
        }
        let mut read_table = |rows: usize, dim: usize| {
            let mut values = Vec::with_capacity(rows * dim);
            for _ in 0..rows * dim {
                values.push(data.get_f32_le());
            }
            EmbeddingTable::from_data(dim, values)
        };
        let entities = read_table(ent_rows, ent_dim);
        let relations = read_table(rel_rows, rel_dim);
        Ok(Self { entities, relations })
    }

    /// Write to a file.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        file.write_all(&self.to_bytes())?;
        file.flush()?;
        Ok(())
    }

    /// Read from a file.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let mut data = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut data)?;
        Self::from_bytes(Bytes::from(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;

    fn sample() -> Checkpoint {
        let mut entities = EmbeddingTable::zeros(7, 5);
        let mut relations = EmbeddingTable::zeros(3, 11);
        Init::Xavier.fill(&mut entities, 1);
        Init::Uniform { bound: 0.3 }.fill(&mut relations, 2);
        Checkpoint::new(entities, relations)
    }

    #[test]
    fn bytes_round_trip() {
        let ck = sample();
        let back = Checkpoint::from_bytes(ck.to_bytes()).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn file_round_trip() {
        let ck = sample();
        let path = std::env::temp_dir().join(format!("hetkg-ck-{}.bin", std::process::id()));
        ck.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back, ck);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn different_row_widths_survive() {
        // TransR-style: relations much wider than entities.
        let entities = EmbeddingTable::from_data(4, vec![1.0; 8]);
        let relations = EmbeddingTable::from_data(20, vec![2.0; 40]);
        let ck = Checkpoint::new(entities, relations);
        let back = Checkpoint::from_bytes(ck.to_bytes()).unwrap();
        assert_eq!(back.entities.dim(), 4);
        assert_eq!(back.relations.dim(), 20);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = Checkpoint::from_bytes(Bytes::from_static(b"NOTACKPT....")).unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic));
    }

    #[test]
    fn truncation_is_detected() {
        let ck = sample();
        let bytes = ck.to_bytes();
        let cut = bytes.slice(..bytes.len() - 10);
        let err = Checkpoint::from_bytes(cut).unwrap_err();
        assert!(matches!(err, CheckpointError::Truncated), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let ck = sample();
        let mut raw = ck.to_bytes().to_vec();
        raw[8] = 99; // version LE byte 0
        let err = Checkpoint::from_bytes(Bytes::from(raw)).unwrap_err();
        assert!(matches!(err, CheckpointError::BadVersion(_)));
    }

    #[test]
    fn empty_tables_round_trip() {
        let ck = Checkpoint::new(EmbeddingTable::zeros(0, 3), EmbeddingTable::zeros(0, 2));
        let back = Checkpoint::from_bytes(ck.to_bytes()).unwrap();
        assert_eq!(back.entities.rows(), 0);
        assert_eq!(back.relations.dim(), 2);
    }
}

//! Embedding checkpointing: save and load dense tables.
//!
//! A checkpoint is two tables (entities, relations) in a simple versioned
//! binary format — magic, version, shapes, then little-endian `f32` rows.
//! Training runs use it to persist the final model; the evaluation tooling
//! loads it back for offline link prediction.
//!
//! Version 2 extends the format with resumable [`TrainState`]: the epoch
//! counter, an optimizer description, and the optimizer-state tables —
//! enough for a crashed trainer to restart mid-run without replaying
//! history. A checkpoint without train state serializes as version 1,
//! byte-identical to the original format, and the loader reads both
//! versions (a v1 file simply has no train state).
//!
//! Version 3 is the crash-consistent on-disk format: the same tables and
//! train state, but every region (header, each payload table) is followed
//! by a 32-bit FNV-1a digest, so a torn write or bit rot is detected as a
//! typed [`CheckpointError::ChecksumMismatch`] instead of being loaded as
//! silently wrong embeddings. [`Checkpoint::save`] always writes v3 via
//! write-temp → fsync → atomic-rename (plus a parent-directory fsync), so
//! a crash mid-save can never leave a half-written file under the final
//! name. [`Checkpoint::load`] reads all three versions. The in-memory wire
//! encoding [`Checkpoint::to_bytes`] stays v1/v2 for compatibility with
//! files written by earlier releases.

use crate::storage::EmbeddingTable;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"HETKGCK\0";
const VERSION_V1: u32 = 1;
const VERSION_V2: u32 = 2;
const VERSION_V3: u32 = 3;
/// v3 flags word: bit 0 set when the checkpoint carries [`TrainState`].
const FLAG_HAS_STATE: u32 = 1;

/// 32-bit FNV-1a, resumable from a prior digest state. Same digest the wire
/// frames use (`hetkg-netsim` is not a dependency of this crate, so the
/// 4-line fold is inlined here).
fn fnv1a_with(seed: u32, bytes: &[u8]) -> u32 {
    bytes
        .iter()
        .fold(seed, |h, &b| (h ^ u32::from(b)).wrapping_mul(0x0100_0193))
}

fn fnv1a(bytes: &[u8]) -> u32 {
    fnv1a_with(0x811C_9DC5, bytes)
}

/// Errors from reading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Not a checkpoint file (bad magic).
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Header shape disagrees with payload length.
    Truncated,
    /// A v3 section's stored digest disagrees with its contents (torn
    /// write, bit rot, or tampering).
    ChecksumMismatch {
        /// Which region failed: `"header"`, `"entities"`, `"relations"`,
        /// `"entity_state"`, or `"relation_state"`.
        section: &'static str,
    },
    /// No checkpoint in a [`CheckpointStore`](crate::CheckpointStore)
    /// manifest survived validation.
    NoValidCheckpoint {
        /// How many manifest entries were tried (and failed).
        tried: usize,
    },
    /// A table dimension or string length exceeds what the format's u32
    /// fields can record. Refusing to serialize beats the silent `as u32`
    /// truncation this replaces, which round-tripped as corrupt tables.
    TooLarge {
        /// Which field overflowed (e.g. `"entity dim"`).
        what: &'static str,
        /// The offending length.
        len: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "io error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a HET-KG checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint is truncated"),
            CheckpointError::ChecksumMismatch { section } => {
                write!(f, "checkpoint section `{section}` failed its checksum")
            }
            CheckpointError::NoValidCheckpoint { tried } => {
                write!(f, "no valid checkpoint in manifest ({tried} entries tried)")
            }
            CheckpointError::TooLarge { what, len } => {
                write!(
                    f,
                    "checkpoint {what} of {len} does not fit the format's u32 field"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Resumable training state carried by a v2 checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainState {
    /// Completed epochs at save time (training resumes from here).
    pub epoch: u64,
    /// Human-readable optimizer description (e.g. `AdaGrad { lr: 0.1 }`);
    /// lets a loader detect state written by a different optimizer.
    pub optimizer: String,
    /// Per-entity optimizer state rows (AdaGrad accumulators, or a single
    /// zero column for stateless optimizers).
    pub entity_state: EmbeddingTable,
    /// Per-relation optimizer state rows.
    pub relation_state: EmbeddingTable,
}

/// A pair of embedding tables (the model parameters) with serialization,
/// optionally carrying resumable [`TrainState`].
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Entity rows, indexed by entity id.
    pub entities: EmbeddingTable,
    /// Relation rows, indexed by relation id.
    pub relations: EmbeddingTable,
    /// Epoch + optimizer state, present in v2 checkpoints.
    pub train_state: Option<TrainState>,
}

impl Checkpoint {
    /// Wrap two tables (no train state; serializes as version 1).
    pub fn new(entities: EmbeddingTable, relations: EmbeddingTable) -> Self {
        Self {
            entities,
            relations,
            train_state: None,
        }
    }

    /// Wrap two tables plus resumable train state (serializes as version 2).
    pub fn with_state(
        entities: EmbeddingTable,
        relations: EmbeddingTable,
        train_state: TrainState,
    ) -> Self {
        Self {
            entities,
            relations,
            train_state: Some(train_state),
        }
    }

    /// Check that a length fits the format's u32 fields — bare `as u32`
    /// casts here used to truncate oversized tables into checkpoints that
    /// round-tripped corrupt.
    fn u32_of(what: &'static str, len: usize) -> Result<u32, CheckpointError> {
        u32::try_from(len).map_err(|_| CheckpointError::TooLarge { what, len })
    }

    /// Serialize to bytes. Fails with [`CheckpointError::TooLarge`] when a
    /// dimension or the optimizer string overflows the format's u32 fields.
    pub fn to_bytes(&self) -> Result<Bytes, CheckpointError> {
        let payload = 4 * (self.entities.as_slice().len() + self.relations.as_slice().len());
        let mut buf = BytesMut::with_capacity(8 + 4 + 4 * 4 + payload);
        buf.put_slice(MAGIC);
        match &self.train_state {
            None => buf.put_u32_le(VERSION_V1),
            Some(_) => buf.put_u32_le(VERSION_V2),
        }
        buf.put_u64_le(self.entities.rows() as u64);
        buf.put_u32_le(Self::u32_of("entity dim", self.entities.dim())?);
        buf.put_u64_le(self.relations.rows() as u64);
        buf.put_u32_le(Self::u32_of("relation dim", self.relations.dim())?);
        if let Some(ts) = &self.train_state {
            buf.put_u64_le(ts.epoch);
            buf.put_u32_le(Self::u32_of("optimizer string", ts.optimizer.len())?);
            buf.put_slice(ts.optimizer.as_bytes());
            buf.put_u64_le(ts.entity_state.rows() as u64);
            buf.put_u32_le(Self::u32_of("entity state dim", ts.entity_state.dim())?);
            buf.put_u64_le(ts.relation_state.rows() as u64);
            buf.put_u32_le(Self::u32_of("relation state dim", ts.relation_state.dim())?);
        }
        for &v in self.entities.as_slice() {
            buf.put_f32_le(v);
        }
        for &v in self.relations.as_slice() {
            buf.put_f32_le(v);
        }
        if let Some(ts) = &self.train_state {
            for &v in ts.entity_state.as_slice() {
                buf.put_f32_le(v);
            }
            for &v in ts.relation_state.as_slice() {
                buf.put_f32_le(v);
            }
        }
        Ok(buf.freeze())
    }

    /// Serialize to the checked v3 format: v2's fields plus a FNV-1a digest
    /// after the header and after each payload table. This is what
    /// [`save`](Checkpoint::save) puts on disk. Fails with
    /// [`CheckpointError::TooLarge`] like [`to_bytes`](Self::to_bytes).
    pub fn to_bytes_checked(&self) -> Result<Bytes, CheckpointError> {
        let payload = 4 * (self.entities.as_slice().len() + self.relations.as_slice().len());
        let mut buf = BytesMut::with_capacity(8 + 4 + 4 + 4 * (8 + 4) + 5 * 4 + payload);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION_V3);
        buf.put_u32_le(if self.train_state.is_some() {
            FLAG_HAS_STATE
        } else {
            0
        });
        buf.put_u64_le(self.entities.rows() as u64);
        buf.put_u32_le(Self::u32_of("entity dim", self.entities.dim())?);
        buf.put_u64_le(self.relations.rows() as u64);
        buf.put_u32_le(Self::u32_of("relation dim", self.relations.dim())?);
        if let Some(ts) = &self.train_state {
            buf.put_u64_le(ts.epoch);
            buf.put_u32_le(Self::u32_of("optimizer string", ts.optimizer.len())?);
            buf.put_slice(ts.optimizer.as_bytes());
            buf.put_u64_le(ts.entity_state.rows() as u64);
            buf.put_u32_le(Self::u32_of("entity state dim", ts.entity_state.dim())?);
            buf.put_u64_le(ts.relation_state.rows() as u64);
            buf.put_u32_le(Self::u32_of("relation state dim", ts.relation_state.dim())?);
        }
        let header_crc = fnv1a(&buf[..]);
        buf.put_u32_le(header_crc);

        let put_table = |buf: &mut BytesMut, t: &EmbeddingTable| {
            let start = buf.len();
            for &v in t.as_slice() {
                buf.put_f32_le(v);
            }
            let crc = fnv1a(&buf[start..]);
            buf.put_u32_le(crc);
        };
        put_table(&mut buf, &self.entities);
        put_table(&mut buf, &self.relations);
        if let Some(ts) = &self.train_state {
            put_table(&mut buf, &ts.entity_state);
            put_table(&mut buf, &ts.relation_state);
        }
        Ok(buf.freeze())
    }

    /// Deserialize from bytes (reads v1, v2, and the checked v3 format).
    pub fn from_bytes(mut data: Bytes) -> Result<Self, CheckpointError> {
        if data.remaining() < 8 + 4 || &data.copy_to_bytes(8)[..] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = data.get_u32_le();
        if version == VERSION_V3 {
            return Self::from_bytes_v3(&data);
        }
        if version != VERSION_V1 && version != VERSION_V2 {
            return Err(CheckpointError::BadVersion(version));
        }
        if data.remaining() < 2 * (8 + 4) {
            return Err(CheckpointError::Truncated);
        }
        let ent_rows = data.get_u64_le() as usize;
        let ent_dim = data.get_u32_le() as usize;
        let rel_rows = data.get_u64_le() as usize;
        let rel_dim = data.get_u32_le() as usize;
        if ent_dim == 0 || rel_dim == 0 {
            return Err(CheckpointError::Truncated);
        }

        let mut state_header = None;
        if version == VERSION_V2 {
            if data.remaining() < 8 + 4 {
                return Err(CheckpointError::Truncated);
            }
            let epoch = data.get_u64_le();
            let opt_len = data.get_u32_le() as usize;
            if data.remaining() < opt_len {
                return Err(CheckpointError::Truncated);
            }
            let optimizer = String::from_utf8(data.copy_to_bytes(opt_len).to_vec())
                .map_err(|_| CheckpointError::Truncated)?;
            if data.remaining() < 2 * (8 + 4) {
                return Err(CheckpointError::Truncated);
            }
            let es_rows = data.get_u64_le() as usize;
            let es_dim = data.get_u32_le() as usize;
            let rs_rows = data.get_u64_le() as usize;
            let rs_dim = data.get_u32_le() as usize;
            if es_dim == 0 || rs_dim == 0 {
                return Err(CheckpointError::Truncated);
            }
            state_header = Some((epoch, optimizer, es_rows, es_dim, rs_rows, rs_dim));
        }

        // Checked arithmetic: a hostile header must not overflow into a
        // small `need` (or panic) — it must read as truncated.
        let need = (|| -> Option<usize> {
            let mut cells = ent_rows.checked_mul(ent_dim)?;
            cells = cells.checked_add(rel_rows.checked_mul(rel_dim)?)?;
            if let Some((_, _, es_rows, es_dim, rs_rows, rs_dim)) = &state_header {
                cells = cells.checked_add(es_rows.checked_mul(*es_dim)?)?;
                cells = cells.checked_add(rs_rows.checked_mul(*rs_dim)?)?;
            }
            cells.checked_mul(4)
        })()
        .ok_or(CheckpointError::Truncated)?;
        if data.remaining() < need {
            return Err(CheckpointError::Truncated);
        }

        let mut read_table = |rows: usize, dim: usize| {
            let mut values = Vec::with_capacity(rows * dim);
            for _ in 0..rows * dim {
                values.push(data.get_f32_le());
            }
            EmbeddingTable::from_data(dim, values)
        };
        let entities = read_table(ent_rows, ent_dim);
        let relations = read_table(rel_rows, rel_dim);
        let train_state =
            state_header.map(|(epoch, optimizer, es_rows, es_dim, rs_rows, rs_dim)| {
                let entity_state = read_table(es_rows, es_dim);
                let relation_state = read_table(rs_rows, rs_dim);
                TrainState {
                    epoch,
                    optimizer,
                    entity_state,
                    relation_state,
                }
            });
        Ok(Self {
            entities,
            relations,
            train_state,
        })
    }

    /// Parse the checked v3 body (`data` starts right after magic + version).
    fn from_bytes_v3(data: &[u8]) -> Result<Self, CheckpointError> {
        struct Cur<'a> {
            buf: &'a [u8],
            pos: usize,
        }
        impl<'a> Cur<'a> {
            fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
                let end = self.pos.checked_add(n).ok_or(CheckpointError::Truncated)?;
                if end > self.buf.len() {
                    return Err(CheckpointError::Truncated);
                }
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            fn u32(&mut self) -> Result<u32, CheckpointError> {
                Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
            }
            fn u64(&mut self) -> Result<u64, CheckpointError> {
                Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
            }
        }

        let mut cur = Cur { buf: data, pos: 0 };
        let flags = cur.u32()?;
        let ent_rows = cur.u64()? as usize;
        let ent_dim = cur.u32()? as usize;
        let rel_rows = cur.u64()? as usize;
        let rel_dim = cur.u32()? as usize;
        if ent_dim == 0 || rel_dim == 0 {
            return Err(CheckpointError::Truncated);
        }
        let mut state_header = None;
        if flags & FLAG_HAS_STATE != 0 {
            let epoch = cur.u64()?;
            let opt_len = cur.u32()? as usize;
            let optimizer = String::from_utf8(cur.take(opt_len)?.to_vec())
                .map_err(|_| CheckpointError::Truncated)?;
            let es_rows = cur.u64()? as usize;
            let es_dim = cur.u32()? as usize;
            let rs_rows = cur.u64()? as usize;
            let rs_dim = cur.u32()? as usize;
            if es_dim == 0 || rs_dim == 0 {
                return Err(CheckpointError::Truncated);
            }
            state_header = Some((epoch, optimizer, es_rows, es_dim, rs_rows, rs_dim));
        }
        // The header digest covers magic + version + everything up to here.
        let mut pre = [0u8; 12];
        pre[..8].copy_from_slice(MAGIC);
        pre[8..].copy_from_slice(&VERSION_V3.to_le_bytes());
        let computed = fnv1a_with(fnv1a(&pre), &data[..cur.pos]);
        if cur.u32()? != computed {
            return Err(CheckpointError::ChecksumMismatch { section: "header" });
        }

        let read_table = |cur: &mut Cur<'_>, rows: usize, dim: usize, section: &'static str| {
            let bytes = rows
                .checked_mul(dim)
                .and_then(|c| c.checked_mul(4))
                .ok_or(CheckpointError::Truncated)?;
            let raw = cur.take(bytes)?;
            if cur.u32()? != fnv1a(raw) {
                return Err(CheckpointError::ChecksumMismatch { section });
            }
            let values = raw
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            Ok::<_, CheckpointError>(EmbeddingTable::from_data(dim, values))
        };
        let entities = read_table(&mut cur, ent_rows, ent_dim, "entities")?;
        let relations = read_table(&mut cur, rel_rows, rel_dim, "relations")?;
        let train_state = match state_header {
            None => None,
            Some((epoch, optimizer, es_rows, es_dim, rs_rows, rs_dim)) => {
                let entity_state = read_table(&mut cur, es_rows, es_dim, "entity_state")?;
                let relation_state = read_table(&mut cur, rs_rows, rs_dim, "relation_state")?;
                Some(TrainState {
                    epoch,
                    optimizer,
                    entity_state,
                    relation_state,
                })
            }
        };
        Ok(Self {
            entities,
            relations,
            train_state,
        })
    }

    /// Write to a file, crash-consistently: the checked v3 bytes go to a
    /// sibling temp file, are fsynced, and are atomically renamed over
    /// `path`; the parent directory is then fsynced (best-effort) so the
    /// rename itself is durable. A crash at any instant leaves either the
    /// old file or the new one under `path` — never a torn mix.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&self.to_bytes_checked()?)?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            // Directory fsync is required for rename durability on Linux but
            // unsupported on some platforms/filesystems; failure to sync the
            // directory does not un-write the checkpoint.
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Read from a file.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let mut data = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut data)?;
        Self::from_bytes(Bytes::from(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;

    fn sample() -> Checkpoint {
        let mut entities = EmbeddingTable::zeros(7, 5);
        let mut relations = EmbeddingTable::zeros(3, 11);
        Init::Xavier.fill(&mut entities, 1);
        Init::Uniform { bound: 0.3 }.fill(&mut relations, 2);
        Checkpoint::new(entities, relations)
    }

    fn sample_v2() -> Checkpoint {
        let base = sample();
        let mut entity_state = EmbeddingTable::zeros(7, 5);
        let mut relation_state = EmbeddingTable::zeros(3, 11);
        Init::Uniform { bound: 1.0 }.fill(&mut entity_state, 3);
        Init::Uniform { bound: 1.0 }.fill(&mut relation_state, 4);
        Checkpoint::with_state(
            base.entities,
            base.relations,
            TrainState {
                epoch: 5,
                optimizer: "AdaGrad { lr: 0.1 }".into(),
                entity_state,
                relation_state,
            },
        )
    }

    #[test]
    fn bytes_round_trip() {
        let ck = sample();
        let back = Checkpoint::from_bytes(ck.to_bytes().unwrap()).unwrap();
        assert_eq!(back, ck);
    }

    /// A multi-gigabyte table can't be built in a test, so the length
    /// check is exercised through the helper the serializers call: any u32
    /// field source beyond `u32::MAX` must surface `TooLarge`, never wrap.
    #[test]
    fn oversized_lengths_refuse_to_serialize() {
        assert_eq!(Checkpoint::u32_of("entity dim", 12).unwrap(), 12);
        assert_eq!(
            Checkpoint::u32_of("entity dim", u32::MAX as usize).unwrap(),
            u32::MAX
        );
        let too_big = u32::MAX as usize + 1;
        match Checkpoint::u32_of("entity dim", too_big) {
            Err(CheckpointError::TooLarge { what, len }) => {
                assert_eq!(what, "entity dim");
                assert_eq!(len, too_big);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // The old `as u32` behavior would have produced 0 here — the exact
        // silent truncation the typed error replaces.
        assert_eq!(too_big as u32, 0);
    }

    #[test]
    fn v2_bytes_round_trip() {
        let ck = sample_v2();
        let back = Checkpoint::from_bytes(ck.to_bytes().unwrap()).unwrap();
        assert_eq!(back, ck);
        let ts = back.train_state.unwrap();
        assert_eq!(ts.epoch, 5);
        assert_eq!(ts.optimizer, "AdaGrad { lr: 0.1 }");
    }

    #[test]
    fn file_round_trip() {
        let ck = sample_v2();
        let path = std::env::temp_dir().join(format!("hetkg-ck-{}.bin", std::process::id()));
        ck.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back, ck);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stateless_checkpoint_serializes_as_v1() {
        let bytes = sample().to_bytes().unwrap();
        assert_eq!(&bytes[8..12], &1u32.to_le_bytes(), "version 1 on the wire");
    }

    #[test]
    fn different_row_widths_survive() {
        // TransR-style: relations much wider than entities.
        let entities = EmbeddingTable::from_data(4, vec![1.0; 8]);
        let relations = EmbeddingTable::from_data(20, vec![2.0; 40]);
        let ck = Checkpoint::new(entities, relations);
        let back = Checkpoint::from_bytes(ck.to_bytes().unwrap()).unwrap();
        assert_eq!(back.entities.dim(), 4);
        assert_eq!(back.relations.dim(), 20);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = Checkpoint::from_bytes(Bytes::from_static(b"NOTACKPT....")).unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic));
    }

    #[test]
    fn truncation_is_detected() {
        let ck = sample();
        let bytes = ck.to_bytes().unwrap();
        let cut = bytes.slice(..bytes.len() - 10);
        let err = Checkpoint::from_bytes(cut).unwrap_err();
        assert!(matches!(err, CheckpointError::Truncated), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let ck = sample();
        let mut raw = ck.to_bytes().unwrap().to_vec();
        raw[8] = 99; // version LE byte 0
        let err = Checkpoint::from_bytes(Bytes::from(raw)).unwrap_err();
        assert!(matches!(err, CheckpointError::BadVersion(_)));
    }

    #[test]
    fn empty_tables_round_trip() {
        let ck = Checkpoint::new(EmbeddingTable::zeros(0, 3), EmbeddingTable::zeros(0, 2));
        let back = Checkpoint::from_bytes(ck.to_bytes().unwrap()).unwrap();
        assert_eq!(back.entities.rows(), 0);
        assert_eq!(back.relations.dim(), 2);
    }

    #[test]
    fn v3_round_trips_with_and_without_state() {
        for ck in [sample(), sample_v2()] {
            let bytes = ck.to_bytes_checked().unwrap();
            assert_eq!(&bytes[8..12], &3u32.to_le_bytes(), "version 3 on the wire");
            let back = Checkpoint::from_bytes(bytes).unwrap();
            assert_eq!(back, ck);
        }
    }

    #[test]
    fn v3_empty_tables_round_trip() {
        let ck = Checkpoint::new(EmbeddingTable::zeros(0, 3), EmbeddingTable::zeros(0, 2));
        let back = Checkpoint::from_bytes(ck.to_bytes_checked().unwrap()).unwrap();
        assert_eq!(back.entities.rows(), 0);
        assert_eq!(back.relations.dim(), 2);
    }

    #[test]
    fn v3_detects_payload_corruption_with_section() {
        let ck = sample_v2();
        let clean = ck.to_bytes_checked().unwrap().to_vec();
        // Flip one byte in the middle of the entities payload (which starts
        // right after the header + its CRC) and expect the right section.
        let ent_bytes = 4 * ck.entities.as_slice().len();
        let payload_start = clean.len()
            - (ent_bytes + 4)
            - (4 * ck.relations.as_slice().len() + 4)
            - ck.train_state
                .as_ref()
                .map(|ts| {
                    4 * ts.entity_state.as_slice().len()
                        + 4
                        + 4 * ts.relation_state.as_slice().len()
                        + 4
                })
                .unwrap_or(0);
        let mut raw = clean.clone();
        raw[payload_start + ent_bytes / 2] ^= 0x10;
        match Checkpoint::from_bytes(Bytes::from(raw)).unwrap_err() {
            CheckpointError::ChecksumMismatch { section } => assert_eq!(section, "entities"),
            e => panic!("expected checksum mismatch, got {e}"),
        }
        // Same flip in the relations payload names that section instead.
        let mut raw = clean.clone();
        raw[payload_start + ent_bytes + 4 + 2] ^= 0x01;
        match Checkpoint::from_bytes(Bytes::from(raw)).unwrap_err() {
            CheckpointError::ChecksumMismatch { section } => assert_eq!(section, "relations"),
            e => panic!("expected checksum mismatch, got {e}"),
        }
    }

    #[test]
    fn v3_detects_header_corruption() {
        let ck = sample_v2();
        let mut raw = ck.to_bytes_checked().unwrap().to_vec();
        raw[16] ^= 0x02; // ent_rows low byte
        let err = Checkpoint::from_bytes(Bytes::from(raw)).unwrap_err();
        assert!(
            matches!(
                err,
                CheckpointError::ChecksumMismatch { section: "header" }
                    | CheckpointError::Truncated
            ),
            "{err}"
        );
    }

    #[test]
    fn v3_every_truncation_point_errors_without_panic() {
        let bytes = sample_v2().to_bytes_checked().unwrap();
        for cut in 0..bytes.len() {
            let err = Checkpoint::from_bytes(bytes.slice(..cut)).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated
                        | CheckpointError::BadMagic
                        | CheckpointError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn save_writes_v3_and_leaves_no_temp_file() {
        let ck = sample_v2();
        let dir = std::env::temp_dir().join(format!("hetkg-ck-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ck");
        ck.save(&path).unwrap();
        // Overwrite in place: the save must go through the temp + rename.
        ck.save(&path).unwrap();
        let names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(
            names,
            vec!["model.ck".to_string()],
            "no temp residue: {names:?}"
        );
        let raw = std::fs::read(&path).unwrap();
        assert_eq!(&raw[8..12], &3u32.to_le_bytes());
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Loss functions over triple scores.
//!
//! The paper's §III-A gives the two standard KGE losses:
//!
//! * **logistic**: `L = Σ log(1 + exp(−y·s))` with `y = +1` for positives
//!   and `−1` for negatives;
//! * **margin ranking**: `L = Σ max(0, γ − s⁺ + s⁻)` over positive/negative
//!   pairs (Algorithm 3 line 17 only back-propagates when `L > 0`).
//!
//! Both return the loss value and the derivative(s) w.r.t. the score(s),
//! which the trainer feeds to [`KgeModel::grad`](crate::models::KgeModel::grad)
//! as `dscore`.

use crate::math::{sigmoid, softplus};
use serde::{Deserialize, Serialize};

/// Loss selector for training configs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossKind {
    /// Pointwise logistic loss.
    Logistic,
    /// Pairwise margin ranking loss with margin `gamma`.
    MarginRanking {
        /// The margin γ.
        gamma: f32,
    },
}

/// Loss and gradient for one scored triple under the logistic loss.
///
/// `label` is `+1.0` for positives, `−1.0` for negatives. Returns
/// `(loss, dloss/dscore)`.
#[inline]
pub fn logistic(score: f32, label: f32) -> (f32, f32) {
    debug_assert!(label == 1.0 || label == -1.0, "label must be ±1");
    let loss = softplus(-label * score);
    // d/ds log(1+exp(−y s)) = −y σ(−y s)
    let grad = -label * sigmoid(-label * score);
    (loss, grad)
}

/// Loss and gradients for one positive/negative score pair under the margin
/// ranking loss. Returns `(loss, dloss/ds_pos, dloss/ds_neg)`.
#[inline]
pub fn margin_ranking(pos_score: f32, neg_score: f32, gamma: f32) -> (f32, f32, f32) {
    let l = gamma - pos_score + neg_score;
    if l > 0.0 {
        (l, -1.0, 1.0)
    } else {
        (0.0, 0.0, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logistic_decreases_with_confident_positive() {
        let (l_low, _) = logistic(0.0, 1.0);
        let (l_high, _) = logistic(5.0, 1.0);
        assert!(l_high < l_low);
        assert!(l_high > 0.0);
    }

    #[test]
    fn logistic_gradient_signs() {
        // Positive label: increasing the score reduces loss ⇒ grad < 0.
        let (_, g_pos) = logistic(0.3, 1.0);
        assert!(g_pos < 0.0);
        // Negative label: increasing the score increases loss ⇒ grad > 0.
        let (_, g_neg) = logistic(0.3, -1.0);
        assert!(g_neg > 0.0);
    }

    #[test]
    fn logistic_gradient_matches_finite_difference() {
        let eps = 1e-3;
        for &(s, y) in &[(0.7f32, 1.0f32), (-1.2, -1.0), (3.0, 1.0), (-0.2, 1.0)] {
            let (_, g) = logistic(s, y);
            let (lp, _) = logistic(s + eps, y);
            let (lm, _) = logistic(s - eps, y);
            let num = (lp - lm) / (2.0 * eps);
            assert!((g - num).abs() < 1e-3, "s={s} y={y}: {g} vs {num}");
        }
    }

    #[test]
    fn margin_inactive_when_separated() {
        // pos beats neg by more than the margin ⇒ zero loss, zero grads.
        let (l, gp, gn) = margin_ranking(2.0, -2.0, 1.0);
        assert_eq!((l, gp, gn), (0.0, 0.0, 0.0));
    }

    #[test]
    fn margin_active_when_violated() {
        let (l, gp, gn) = margin_ranking(0.1, 0.0, 1.0);
        assert!((l - 0.9).abs() < 1e-6);
        assert_eq!(gp, -1.0);
        assert_eq!(gn, 1.0);
    }

    #[test]
    fn margin_boundary_is_inactive() {
        // Exactly at the margin: max(0, 0) = 0.
        let (l, gp, gn) = margin_ranking(1.0, 0.0, 1.0);
        assert_eq!((l, gp, gn), (0.0, 0.0, 0.0));
    }
}

//! A directory of recent checkpoints with a recovery manifest.
//!
//! [`CheckpointStore`] owns a directory, writes each checkpoint through the
//! crash-consistent [`Checkpoint::save`] path, and appends one line per
//! save to a plain-text manifest. Recovery walks the manifest newest-first
//! and returns the first checkpoint that still validates (magic, shapes,
//! and every v3 section CRC), counting how many entries it had to skip —
//! so a torn or rotted latest checkpoint degrades to the previous one with
//! a typed error trail instead of a panic or a silent partial load.
//!
//! The manifest is append-mostly and line-oriented on purpose: a torn
//! manifest tail parses as "skip the malformed line", never as a wrong
//! entry. Pruning (bounded retention) rewrites it through the same
//! temp-file + rename protocol the checkpoints use.
//!
//! For fault drills the store can deliberately *tear* its n-th save —
//! writing a truncated image under the final name while still recording it
//! in the manifest, as if the medium lied about durability — which is how
//! the trainer's torn-write recovery test forces the fallback path.

use crate::checkpoint::{Checkpoint, CheckpointError};
use std::io::Write;
use std::path::{Path, PathBuf};

const MANIFEST: &str = "manifest.txt";
/// Manifest record version tag (first token of every line).
const RECORD_TAG: &str = "1";

/// One manifest line: a checkpoint file and the epoch it captured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Monotone save sequence number (disambiguates re-saves of an epoch
    /// after recovery).
    pub seq: u64,
    /// Completed epochs at save time.
    pub epoch: u64,
    /// File name inside the store directory.
    pub file: String,
}

/// A checkpoint recovered from the store.
#[derive(Debug)]
pub struct LoadedCheckpoint {
    /// Epoch recorded in the manifest for this checkpoint.
    pub epoch: u64,
    /// Manifest entries that failed validation before this one loaded
    /// (newest-first walk).
    pub skipped: usize,
    /// The checkpoint itself.
    pub checkpoint: Checkpoint,
}

/// A bounded directory of checkpoints plus the manifest describing them.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
    next_seq: u64,
    torn: Option<u64>,
}

impl CheckpointStore {
    /// Open (creating if needed) a store at `dir`, retaining at most `keep`
    /// checkpoints. Re-opening an existing store resumes its sequence
    /// numbering from the manifest.
    pub fn open(dir: impl Into<PathBuf>, keep: usize) -> Result<Self, CheckpointError> {
        assert!(
            keep >= 1,
            "a checkpoint store must retain at least one checkpoint"
        );
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut store = Self {
            dir,
            keep,
            next_seq: 0,
            torn: None,
        };
        store.next_seq = store
            .entries()?
            .iter()
            .map(|e| e.seq + 1)
            .max()
            .unwrap_or(0);
        Ok(store)
    }

    /// Fault drill: tear (truncate mid-write) the save with sequence number
    /// `seq`, while still recording it in the manifest.
    pub fn with_torn_write(mut self, seq: Option<u64>) -> Self {
        self.torn = seq;
        self
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Save a checkpoint taken after `epoch` completed epochs, record it in
    /// the manifest, and prune beyond the retention bound. Returns the
    /// checkpoint's path.
    pub fn save(&mut self, ck: &Checkpoint, epoch: u64) -> Result<PathBuf, CheckpointError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let file = format!("ck-{seq:06}-e{epoch}.bin");
        let path = self.dir.join(&file);
        if self.torn == Some(seq) {
            // Simulate a medium that acknowledged the write but persisted
            // only a prefix: the final name exists, the image does not
            // validate, and the manifest still advertises it.
            let full = ck.to_bytes_checked()?;
            std::fs::write(&path, &full[..full.len() * 2 / 3])?;
        } else {
            ck.save(&path)?;
        }
        self.append_manifest(seq, epoch, &file)?;
        self.prune()?;
        Ok(path)
    }

    /// All manifest entries, oldest first. Malformed lines (torn manifest
    /// tail) are skipped, not errors.
    pub fn entries(&self) -> Result<Vec<ManifestEntry>, CheckpointError> {
        let path = self.dir.join(MANIFEST);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut entries = Vec::new();
        for line in text.lines() {
            let mut it = line.split_whitespace();
            let (tag, seq, epoch, file) = (it.next(), it.next(), it.next(), it.next());
            if tag != Some(RECORD_TAG) || it.next().is_some() {
                continue;
            }
            let (Some(seq), Some(epoch), Some(file)) = (seq, epoch, file) else {
                continue;
            };
            let (Ok(seq), Ok(epoch)) = (seq.parse(), epoch.parse()) else {
                continue;
            };
            entries.push(ManifestEntry {
                seq,
                epoch,
                file: file.to_string(),
            });
        }
        Ok(entries)
    }

    /// Recover the newest checkpoint that validates, skipping (and
    /// counting) entries whose files are missing, torn, or corrupt.
    pub fn load_latest(&self) -> Result<LoadedCheckpoint, CheckpointError> {
        let entries = self.entries()?;
        let mut skipped = 0;
        for entry in entries.iter().rev() {
            match Checkpoint::load(&self.dir.join(&entry.file)) {
                Ok(checkpoint) => {
                    return Ok(LoadedCheckpoint {
                        epoch: entry.epoch,
                        skipped,
                        checkpoint,
                    })
                }
                Err(_) => skipped += 1,
            }
        }
        Err(CheckpointError::NoValidCheckpoint { tried: skipped })
    }

    fn append_manifest(&self, seq: u64, epoch: u64, file: &str) -> Result<(), CheckpointError> {
        let path = self.dir.join(MANIFEST);
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{RECORD_TAG} {seq} {epoch} {file}")?;
        f.sync_all()?;
        Ok(())
    }

    fn prune(&self) -> Result<(), CheckpointError> {
        let entries = self.entries()?;
        if entries.len() <= self.keep {
            return Ok(());
        }
        let cut = entries.len() - self.keep;
        let (drop, keep) = entries.split_at(cut);
        let tmp = self.dir.join(format!("{MANIFEST}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            for e in keep {
                writeln!(f, "{RECORD_TAG} {} {} {}", e.seq, e.epoch, e.file)?;
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.dir.join(MANIFEST))?;
        for e in drop {
            // A file may be shared with a kept entry only if names collide,
            // which seq uniqueness rules out; removal failures are not fatal
            // to recovery (the manifest no longer references the file).
            let _ = std::fs::remove_file(self.dir.join(&e.file));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::storage::EmbeddingTable;

    fn ck(tag: f32) -> Checkpoint {
        let mut entities = EmbeddingTable::zeros(5, 4);
        let mut relations = EmbeddingTable::zeros(2, 4);
        Init::Uniform { bound: 0.5 }.fill(&mut entities, 1);
        Init::Uniform { bound: 0.5 }.fill(&mut relations, 2);
        entities.row_mut(0)[0] = tag;
        Checkpoint::new(entities, relations)
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hetkg-store-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn save_load_round_trip_with_retention() {
        let dir = tmp_dir("retain");
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        for epoch in 0..5u64 {
            store.save(&ck(epoch as f32), epoch).unwrap();
        }
        let entries = store.entries().unwrap();
        assert_eq!(entries.len(), 2, "retention bound enforced");
        assert_eq!(
            entries.iter().map(|e| e.epoch).collect::<Vec<_>>(),
            vec![3, 4]
        );
        let loaded = store.load_latest().unwrap();
        assert_eq!(loaded.epoch, 4);
        assert_eq!(loaded.skipped, 0);
        assert_eq!(loaded.checkpoint.entities.row(0)[0], 4.0);
        // Pruned files are actually gone.
        let files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n != "manifest.txt")
            .collect();
        assert_eq!(files.len(), 2, "{files:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_latest_falls_back_to_previous_valid() {
        let dir = tmp_dir("torn");
        let mut store = CheckpointStore::open(&dir, 3)
            .unwrap()
            .with_torn_write(Some(2));
        for epoch in 0..3u64 {
            store.save(&ck(epoch as f32), epoch).unwrap();
        }
        let loaded = store.load_latest().unwrap();
        assert_eq!(loaded.epoch, 1, "fell back past the torn save");
        assert_eq!(loaded.skipped, 1);
        assert_eq!(loaded.checkpoint.entities.row(0)[0], 1.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_torn_is_a_typed_error_not_a_panic() {
        let dir = tmp_dir("all-torn");
        let mut store = CheckpointStore::open(&dir, 3).unwrap();
        store.save(&ck(0.0), 0).unwrap();
        // Rot every checkpoint file behind the manifest's back.
        for e in store.entries().unwrap() {
            let p = dir.join(&e.file);
            let raw = std::fs::read(&p).unwrap();
            std::fs::write(&p, &raw[..raw.len() / 2]).unwrap();
        }
        match store.load_latest() {
            Err(CheckpointError::NoValidCheckpoint { tried }) => assert_eq!(tried, 1),
            other => panic!("expected NoValidCheckpoint, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_resumes_sequence_numbers() {
        let dir = tmp_dir("reopen");
        let mut store = CheckpointStore::open(&dir, 4).unwrap();
        store.save(&ck(0.0), 0).unwrap();
        store.save(&ck(1.0), 1).unwrap();
        drop(store);
        let mut store = CheckpointStore::open(&dir, 4).unwrap();
        store.save(&ck(2.0), 2).unwrap();
        let seqs: Vec<_> = store.entries().unwrap().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_manifest_tail_is_skipped() {
        let dir = tmp_dir("manifest-tail");
        let mut store = CheckpointStore::open(&dir, 4).unwrap();
        store.save(&ck(0.0), 0).unwrap();
        // Simulate a crash mid-append: a partial line with no file name.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("manifest.txt"))
            .unwrap();
        write!(f, "1 1 1").unwrap();
        drop(f);
        assert_eq!(store.entries().unwrap().len(), 1);
        assert_eq!(store.load_latest().unwrap().epoch, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}

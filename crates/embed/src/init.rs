//! Embedding initialization.
//!
//! DGL-KE (and therefore the paper) initializes embeddings uniformly in
//! `[-γ/d, γ/d]`-style ranges; we provide the two standard schemes. All
//! initializers are deterministic in the seed so distributed runs can
//! initialize shards independently yet reproducibly.

use crate::storage::EmbeddingTable;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Initialization scheme for an embedding table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Init {
    /// Uniform in `[-bound, bound]`.
    Uniform {
        /// Half-width of the interval.
        bound: f32,
    },
    /// Xavier/Glorot-style uniform: `[-sqrt(6/(fan_in+fan_out)), +...]`,
    /// with both fans equal to the embedding dimension.
    Xavier,
}

impl Init {
    /// The DGL-KE default: uniform with bound `gamma / dim`.
    pub fn dglke_default(gamma: f32, dim: usize) -> Self {
        Init::Uniform {
            bound: gamma / dim as f32,
        }
    }

    /// Fill `table` in place, deterministically from `seed`.
    pub fn fill(self, table: &mut EmbeddingTable, seed: u64) {
        let dim = table.dim();
        let bound = match self {
            Init::Uniform { bound } => bound,
            Init::Xavier => (6.0 / (dim as f64 + dim as f64)).sqrt() as f32,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        for v in table.as_mut_slice() {
            *v = rng.random_range(-bound..=bound);
        }
    }

    /// Initialize a single row (used when a shard materializes rows lazily).
    /// The seed is mixed with the row key so every row has its own stream.
    pub fn fill_row(self, row: &mut [f32], seed: u64, key: u64) {
        let bound = match self {
            Init::Uniform { bound } => bound,
            Init::Xavier => {
                let d = row.len() as f64;
                (6.0 / (d + d)).sqrt() as f32
            }
        };
        // SplitMix-style mixing so adjacent keys decorrelate.
        let mixed = seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(mixed);
        for v in row {
            *v = rng.random_range(-bound..=bound);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_bound() {
        let mut t = EmbeddingTable::zeros(100, 16);
        Init::Uniform { bound: 0.5 }.fill(&mut t, 1);
        assert!(t.as_slice().iter().all(|v| v.abs() <= 0.5));
        // Not all zero.
        assert!(t.as_slice().iter().any(|v| v.abs() > 1e-6));
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = EmbeddingTable::zeros(10, 8);
        let mut b = EmbeddingTable::zeros(10, 8);
        Init::Xavier.fill(&mut a, 7);
        Init::Xavier.fill(&mut b, 7);
        assert_eq!(a, b);
        let mut c = EmbeddingTable::zeros(10, 8);
        Init::Xavier.fill(&mut c, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn per_row_streams_differ_by_key() {
        let mut r1 = vec![0.0f32; 8];
        let mut r2 = vec![0.0f32; 8];
        let init = Init::Uniform { bound: 1.0 };
        init.fill_row(&mut r1, 3, 10);
        init.fill_row(&mut r2, 3, 11);
        assert_ne!(r1, r2);
        // Same (seed, key) reproduces.
        let mut r3 = vec![0.0f32; 8];
        init.fill_row(&mut r3, 3, 10);
        assert_eq!(r1, r3);
    }

    #[test]
    fn dglke_default_bound() {
        match Init::dglke_default(12.0, 400) {
            Init::Uniform { bound } => assert!((bound - 0.03).abs() < 1e-6),
            _ => unreachable!(),
        }
    }

    #[test]
    fn xavier_bound_scales_with_dim() {
        let mut wide = EmbeddingTable::zeros(50, 256);
        Init::Xavier.fill(&mut wide, 1);
        let max_wide = wide.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let mut narrow = EmbeddingTable::zeros(50, 4);
        Init::Xavier.fill(&mut narrow, 1);
        let max_narrow = narrow.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(max_wide < max_narrow);
    }
}

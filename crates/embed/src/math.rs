//! Small dense-vector kernels shared by the score functions.
//!
//! Everything operates on `&[f32]` slices of equal length; callers guarantee
//! the lengths (debug-asserted here). These are the hot loops of training —
//! keep them branch-free and auto-vectorizable.
//!
//! `dot` and `axpy` process eight lanes per step over `chunks_exact(8)` so
//! the compiler can keep the whole accumulator state in one vector register
//! without having to prove a reassociation is safe. For `axpy` the result is
//! bit-identical to the scalar loop (each element is independent); for `dot`
//! the lane-split changes the summation *order*, so results may differ from
//! the scalar reference by a few ulps — the property tests below pin the
//! deviation.

/// Accumulator lanes in the chunked kernels (one AVX2 register of f32s).
const LANES: usize = 8;

/// Dot product `x · y`.
///
/// Accumulates into [`LANES`] independent partial sums (one per lane
/// position) and combines them with a pairwise reduction; the tail shorter
/// than a chunk is folded in scalarly at the end.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let xc = x.chunks_exact(LANES);
    let yc = y.chunks_exact(LANES);
    let (tx, ty) = (xc.remainder(), yc.remainder());
    let mut lanes = [0.0f32; LANES];
    for (xs, ys) in xc.zip(yc) {
        for (l, acc) in lanes.iter_mut().enumerate() {
            *acc += xs[l] * ys[l];
        }
    }
    let mut acc = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    for i in 0..tx.len() {
        acc += tx[i] * ty[i];
    }
    acc
}

/// `y += a * x`.
///
/// Chunked eight elements at a time; bit-identical to the scalar loop.
#[inline]
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    let mut yc = y.chunks_exact_mut(LANES);
    let xc = x.chunks_exact(LANES);
    let tx = xc.remainder();
    for (ys, xs) in (&mut yc).zip(xc) {
        for l in 0..LANES {
            ys[l] += a * xs[l];
        }
    }
    for (yv, &xv) in yc.into_remainder().iter_mut().zip(tx) {
        *yv += a * xv;
    }
}

/// L2 norm of the residual `q − t` without materializing it:
/// `sqrt(Σ (q_i − t_i)²)`.
///
/// Accumulates with exactly the lane structure of [`dot`] — each element is
/// subtracted then squared into the same lane position the two-pass
/// subtract-into-scratch-then-[`norm2`] path would have used, with the same
/// pairwise lane reduction and scalar tail — so the result is bit-identical
/// to that path while skipping the residual's store/reload round trip.
#[inline]
pub fn residual_norm2(q: &[f32], t: &[f32]) -> f32 {
    debug_assert_eq!(q.len(), t.len());
    let qc = q.chunks_exact(LANES);
    let tc = t.chunks_exact(LANES);
    let (tq, tt) = (qc.remainder(), tc.remainder());
    let mut lanes = [0.0f32; LANES];
    for (qs, ts) in qc.zip(tc) {
        for (l, acc) in lanes.iter_mut().enumerate() {
            let d = qs[l] - ts[l];
            *acc += d * d;
        }
    }
    let mut acc = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    for i in 0..tq.len() {
        let d = tq[i] - tt[i];
        acc += d * d;
    }
    acc.sqrt()
}

/// L1 norm of the residual `q − t`: `Σ |q_i − t_i|`, summed sequentially in
/// index order — bit-identical to subtract-into-scratch then [`norm1`].
#[inline]
pub fn residual_norm1(q: &[f32], t: &[f32]) -> f32 {
    debug_assert_eq!(q.len(), t.len());
    q.iter().zip(t).map(|(a, b)| (a - b).abs()).sum()
}

/// L1 norm `Σ |x_i|`.
#[inline]
pub fn norm1(x: &[f32]) -> f32 {
    x.iter().map(|v| v.abs()).sum()
}

/// L2 norm `sqrt(Σ x_i²)`.
#[inline]
pub fn norm2(x: &[f32]) -> f32 {
    dot(x, x).sqrt()
}

/// Scale a vector in place: `x *= a`.
#[inline]
pub fn scale(x: &mut [f32], a: f32) {
    for v in x {
        *v *= a;
    }
}

/// Normalize to unit L2 norm in place; leaves zero vectors untouched.
#[inline]
pub fn normalize(x: &mut [f32]) {
    let n = norm2(x);
    if n > 0.0 {
        scale(x, 1.0 / n);
    }
}

/// Elementwise difference norm helper: returns `h + r - t` into `out`.
#[inline]
pub fn translation_residual(h: &[f32], r: &[f32], t: &[f32], out: &mut [f32]) {
    debug_assert!(h.len() == r.len() && r.len() == t.len() && t.len() == out.len());
    for i in 0..h.len() {
        out[i] = h[i] + r[i] - t[i];
    }
}

/// Dense matrix-vector product `out = M x` with `M` row-major `rows×cols`.
#[inline]
pub fn matvec(m: &[f32], x: &[f32], out: &mut [f32]) {
    let rows = out.len();
    let cols = x.len();
    debug_assert_eq!(m.len(), rows * cols);
    for (i, o) in out.iter_mut().enumerate() {
        *o = dot(&m[i * cols..(i + 1) * cols], x);
    }
}

/// Dense transposed matrix-vector product `out = Mᵀ x` with `M` row-major
/// `rows×cols` (so `x` has `rows` elements and `out` has `cols`).
#[inline]
pub fn matvec_t(m: &[f32], x: &[f32], out: &mut [f32]) {
    let rows = x.len();
    let cols = out.len();
    debug_assert_eq!(m.len(), rows * cols);
    out.fill(0.0);
    for i in 0..rows {
        let row = &m[i * cols..(i + 1) * cols];
        let xi = x[i];
        for j in 0..cols {
            out[j] += xi * row[j];
        }
    }
}

/// Numerically-stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically-stable `log(1 + exp(x))` (softplus).
#[inline]
pub fn softplus(x: f32) -> f32 {
    if x > 0.0 {
        x + (-x).exp().ln_1p()
    } else {
        x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = [3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm1(&[-3.0, 4.0]), 7.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = [1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, [3.0, -1.0]);
    }

    #[test]
    fn normalize_unit_and_zero() {
        let mut x = [3.0, 4.0];
        normalize(&mut x);
        assert!((norm2(&x) - 1.0).abs() < 1e-6);
        let mut z = [0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, [0.0, 0.0]);
    }

    #[test]
    fn residual_matches_definition() {
        let mut out = [0.0; 3];
        translation_residual(
            &[1.0, 2.0, 3.0],
            &[0.5, 0.5, 0.5],
            &[1.0, 1.0, 1.0],
            &mut out,
        );
        assert_eq!(out, [0.5, 1.5, 2.5]);
    }

    #[test]
    fn matvec_and_transpose_agree_with_manual() {
        // M = [[1,2],[3,4],[5,6]] (3x2)
        let m = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x2 = [1.0, 1.0];
        let mut out3 = [0.0; 3];
        matvec(&m, &x2, &mut out3);
        assert_eq!(out3, [3.0, 7.0, 11.0]);
        let x3 = [1.0, 0.0, 1.0];
        let mut out2 = [0.0; 2];
        matvec_t(&m, &x3, &mut out2);
        assert_eq!(out2, [6.0, 8.0]);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(100.0) <= 1.0 && sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) >= 0.0 && sigmoid(-100.0) < 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn softplus_is_stable_and_positive() {
        assert!(softplus(-100.0) >= 0.0);
        assert!((softplus(100.0) - 100.0).abs() < 1e-3);
        assert!((softplus(0.0) - std::f32::consts::LN_2).abs() < 1e-6);
    }

    /// Tiny deterministic xorshift generator for the property tests (no
    /// external RNG dependency).
    struct XorShift(u64);

    impl XorShift {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        /// Uniform in [0, 1).
        fn next_f32(&mut self) -> f32 {
            (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
        }

        fn vec_in(&mut self, n: usize, lo: f32, hi: f32) -> Vec<f32> {
            (0..n).map(|_| lo + (hi - lo) * self.next_f32()).collect()
        }
    }

    /// Plain left-to-right scalar accumulation — the reference the chunked
    /// kernel is pinned against.
    fn dot_scalar(x: &[f32], y: &[f32]) -> f32 {
        let mut acc = 0.0f32;
        for i in 0..x.len() {
            acc += x[i] * y[i];
        }
        acc
    }

    /// Distance in units-in-the-last-place between two finite floats
    /// (order-preserving integer mapping of the IEEE-754 bit patterns).
    fn ulps(a: f32, b: f32) -> i64 {
        fn key(v: f32) -> i64 {
            let i = v.to_bits() as i32;
            (if i < 0 { i32::MIN.wrapping_sub(i) } else { i }) as i64
        }
        (key(a) - key(b)).abs()
    }

    #[test]
    fn chunked_dot_stays_within_the_summation_error_bound() {
        let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
        for trial in 0..200 {
            let n = (trial * 7) % 68; // covers 0, tails, and multi-chunk
            let x = rng.vec_in(n, -1.0, 1.0);
            let y = rng.vec_in(n, -1.0, 1.0);
            let got = dot(&x, &y);
            let want = dot_scalar(&x, &y);
            // Both orders obey |err| <= n * eps * sum(|x_i y_i|); the
            // difference between them obeys twice that.
            let mag: f32 = x.iter().zip(&y).map(|(a, b)| (a * b).abs()).sum();
            let bound = 2.0 * n as f32 * f32::EPSILON * mag + f32::MIN_POSITIVE;
            assert!(
                (got - want).abs() <= bound,
                "n={n}: chunked {got} vs scalar {want} differ by {} (bound {bound})",
                (got - want).abs()
            );
        }
    }

    #[test]
    fn chunked_dot_is_ulp_close_on_cancellation_free_inputs() {
        // With all-positive terms there is no catastrophic cancellation, so
        // an ulp bound on the result itself is meaningful and tight.
        let mut rng = XorShift(0x1234_5678_9abc_def1);
        for &n in &[1usize, 7, 8, 9, 16, 63, 64, 65, 256] {
            let x = rng.vec_in(n, 0.5, 1.5);
            let y = rng.vec_in(n, 0.5, 1.5);
            let got = dot(&x, &y);
            let want = dot_scalar(&x, &y);
            let bound = 8 + n as i64;
            assert!(
                ulps(got, want) <= bound,
                "n={n}: chunked {got} vs scalar {want} differ by {} ulps (bound {bound})",
                ulps(got, want)
            );
        }
    }

    #[test]
    fn chunked_axpy_is_bit_identical_to_scalar() {
        let mut rng = XorShift(0xfeed_beef_cafe_f00d);
        for &n in &[0usize, 1, 7, 8, 9, 31, 32, 33, 100] {
            let a = -3.0 + 6.0 * rng.next_f32();
            let x = rng.vec_in(n, -2.0, 2.0);
            let mut got = rng.vec_in(n, -2.0, 2.0);
            let mut want = got.clone();
            axpy(a, &x, &mut got);
            for i in 0..n {
                want[i] += a * x[i];
            }
            for i in 0..n {
                assert_eq!(
                    got[i].to_bits(),
                    want[i].to_bits(),
                    "n={n} i={i}: {} vs {}",
                    got[i],
                    want[i]
                );
            }
        }
    }
}

//! Small dense-vector kernels shared by the score functions.
//!
//! Everything operates on `&[f32]` slices of equal length; callers guarantee
//! the lengths (debug-asserted here). These are the hot loops of training —
//! keep them branch-free and auto-vectorizable.

/// Dot product `x · y`.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = 0.0f32;
    for i in 0..x.len() {
        acc += x[i] * y[i];
    }
    acc
}

/// `y += a * x`.
#[inline]
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for i in 0..x.len() {
        y[i] += a * x[i];
    }
}

/// L1 norm `Σ |x_i|`.
#[inline]
pub fn norm1(x: &[f32]) -> f32 {
    x.iter().map(|v| v.abs()).sum()
}

/// L2 norm `sqrt(Σ x_i²)`.
#[inline]
pub fn norm2(x: &[f32]) -> f32 {
    dot(x, x).sqrt()
}

/// Scale a vector in place: `x *= a`.
#[inline]
pub fn scale(x: &mut [f32], a: f32) {
    for v in x {
        *v *= a;
    }
}

/// Normalize to unit L2 norm in place; leaves zero vectors untouched.
#[inline]
pub fn normalize(x: &mut [f32]) {
    let n = norm2(x);
    if n > 0.0 {
        scale(x, 1.0 / n);
    }
}

/// Elementwise difference norm helper: returns `h + r - t` into `out`.
#[inline]
pub fn translation_residual(h: &[f32], r: &[f32], t: &[f32], out: &mut [f32]) {
    debug_assert!(h.len() == r.len() && r.len() == t.len() && t.len() == out.len());
    for i in 0..h.len() {
        out[i] = h[i] + r[i] - t[i];
    }
}

/// Dense matrix-vector product `out = M x` with `M` row-major `rows×cols`.
#[inline]
pub fn matvec(m: &[f32], x: &[f32], out: &mut [f32]) {
    let rows = out.len();
    let cols = x.len();
    debug_assert_eq!(m.len(), rows * cols);
    for (i, o) in out.iter_mut().enumerate() {
        *o = dot(&m[i * cols..(i + 1) * cols], x);
    }
}

/// Dense transposed matrix-vector product `out = Mᵀ x` with `M` row-major
/// `rows×cols` (so `x` has `rows` elements and `out` has `cols`).
#[inline]
pub fn matvec_t(m: &[f32], x: &[f32], out: &mut [f32]) {
    let rows = x.len();
    let cols = out.len();
    debug_assert_eq!(m.len(), rows * cols);
    out.fill(0.0);
    for i in 0..rows {
        let row = &m[i * cols..(i + 1) * cols];
        let xi = x[i];
        for j in 0..cols {
            out[j] += xi * row[j];
        }
    }
}

/// Numerically-stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically-stable `log(1 + exp(x))` (softplus).
#[inline]
pub fn softplus(x: f32) -> f32 {
    if x > 0.0 {
        x + (-x).exp().ln_1p()
    } else {
        x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = [3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm1(&[-3.0, 4.0]), 7.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = [1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, [3.0, -1.0]);
    }

    #[test]
    fn normalize_unit_and_zero() {
        let mut x = [3.0, 4.0];
        normalize(&mut x);
        assert!((norm2(&x) - 1.0).abs() < 1e-6);
        let mut z = [0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, [0.0, 0.0]);
    }

    #[test]
    fn residual_matches_definition() {
        let mut out = [0.0; 3];
        translation_residual(
            &[1.0, 2.0, 3.0],
            &[0.5, 0.5, 0.5],
            &[1.0, 1.0, 1.0],
            &mut out,
        );
        assert_eq!(out, [0.5, 1.5, 2.5]);
    }

    #[test]
    fn matvec_and_transpose_agree_with_manual() {
        // M = [[1,2],[3,4],[5,6]] (3x2)
        let m = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x2 = [1.0, 1.0];
        let mut out3 = [0.0; 3];
        matvec(&m, &x2, &mut out3);
        assert_eq!(out3, [3.0, 7.0, 11.0]);
        let x3 = [1.0, 0.0, 1.0];
        let mut out2 = [0.0; 2];
        matvec_t(&m, &x3, &mut out2);
        assert_eq!(out2, [6.0, 8.0]);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(100.0) <= 1.0 && sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) >= 0.0 && sigmoid(-100.0) < 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn softplus_is_stable_and_positive() {
        assert!(softplus(-100.0) >= 0.0);
        assert!((softplus(100.0) - 100.0).abs() < 1e-3);
        assert!((softplus(0.0) - std::f32::consts::LN_2).abs() < 1e-6);
    }
}

//! Finite-difference verification of analytic gradients.
//!
//! Every [`KgeModel`](crate::models::KgeModel) implements its backward pass
//! by hand; this module is how we trust them. [`check_model_grads`] compares
//! each analytic partial derivative against a central difference
//! `(f(x+ε) − f(x−ε)) / 2ε` and fails on the first mismatch. It is exported
//! (not test-only) so downstream crates can property-test their own model
//! compositions.

use crate::models::KgeModel;

/// Default perturbation size. f32 scores lose precision below this.
pub const DEFAULT_EPS: f32 = 1e-2;
/// Absolute part of the default tolerance:
/// |analytic − numeric| ≤ ATOL + RTOL·|numeric|.
pub const DEFAULT_ATOL: f32 = 2e-2;
/// Relative part of the default tolerance.
pub const DEFAULT_RTOL: f32 = 5e-2;

/// Which argument of `score(h, r, t)` a check is perturbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Head,
    Relation,
    Tail,
}

/// Compare analytic and numeric gradients of `model.score` at `(h, r, t)`
/// using the default tolerances.
///
/// Returns `Err` with a human-readable description of the first coordinate
/// that disagrees.
pub fn check_model_grads(
    model: &dyn KgeModel,
    h: &[f32],
    r: &[f32],
    t: &[f32],
) -> Result<(), String> {
    check_model_grads_with(model, h, r, t, DEFAULT_EPS, DEFAULT_ATOL, DEFAULT_RTOL)
}

/// [`check_model_grads`] with explicit perturbation and tolerances.
pub fn check_model_grads_with(
    model: &dyn KgeModel,
    h: &[f32],
    r: &[f32],
    t: &[f32],
    eps: f32,
    atol: f32,
    rtol: f32,
) -> Result<(), String> {
    assert_eq!(h.len(), model.entity_dim(), "head slice width");
    assert_eq!(r.len(), model.relation_dim(), "relation slice width");
    assert_eq!(t.len(), model.entity_dim(), "tail slice width");

    let mut gh = vec![0.0f32; h.len()];
    let mut gr = vec![0.0f32; r.len()];
    let mut gt = vec![0.0f32; t.len()];
    model.grad(h, r, t, 1.0, &mut gh, &mut gr, &mut gt);

    let mut hb = h.to_vec();
    let mut rb = r.to_vec();
    let mut tb = t.to_vec();

    for slot in [Slot::Head, Slot::Relation, Slot::Tail] {
        let (len, label, analytic) = match slot {
            Slot::Head => (hb.len(), "h", gh.as_slice()),
            Slot::Relation => (rb.len(), "r", gr.as_slice()),
            Slot::Tail => (tb.len(), "t", gt.as_slice()),
        };
        // Borrow-checker-friendly: own the analytic grads for this slot.
        let analytic = analytic.to_vec();
        for i in 0..len {
            let orig = match slot {
                Slot::Head => hb[i],
                Slot::Relation => rb[i],
                Slot::Tail => tb[i],
            };
            set(&mut hb, &mut rb, &mut tb, slot, i, orig + eps);
            let plus = model.score(&hb, &rb, &tb);
            set(&mut hb, &mut rb, &mut tb, slot, i, orig - eps);
            let minus = model.score(&hb, &rb, &tb);
            set(&mut hb, &mut rb, &mut tb, slot, i, orig);

            let numeric = (plus - minus) / (2.0 * eps);
            let diff = (analytic[i] - numeric).abs();
            let tol = atol + rtol * numeric.abs();
            if !diff.is_finite() || diff > tol {
                return Err(format!(
                    "{model} ∂score/∂{label}[{i}]: analytic {a} vs numeric {numeric} \
                     (diff {diff} > tol {tol})",
                    model = model.name(),
                    a = analytic[i],
                ));
            }
        }
    }
    Ok(())
}

#[inline]
fn set(h: &mut [f32], r: &mut [f32], t: &mut [f32], slot: Slot, i: usize, v: f32) {
    match slot {
        Slot::Head => h[i] = v,
        Slot::Relation => r[i] = v,
        Slot::Tail => t[i] = v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{DistMult, KgeModel};

    /// A deliberately wrong model: score is DistMult but the reported
    /// gradient for `h` is doubled.
    struct WrongGrad(DistMult);

    impl KgeModel for WrongGrad {
        fn name(&self) -> &'static str {
            "WrongGrad"
        }
        fn base_dim(&self) -> usize {
            self.0.base_dim()
        }
        fn score(&self, h: &[f32], r: &[f32], t: &[f32]) -> f32 {
            self.0.score(h, r, t)
        }
        fn grad(
            &self,
            h: &[f32],
            r: &[f32],
            t: &[f32],
            dscore: f32,
            gh: &mut [f32],
            gr: &mut [f32],
            gt: &mut [f32],
        ) {
            self.0.grad(h, r, t, 2.0 * dscore, gh, gr, gt);
        }
    }

    #[test]
    fn detects_wrong_gradients() {
        let m = WrongGrad(DistMult::new(4));
        let h = [0.5, -0.2, 0.3, 0.9];
        let r = [0.4, 0.4, 0.4, 0.4];
        let t = [0.1, 0.8, -0.5, 0.2];
        let err = check_model_grads(&m, &h, &r, &t).unwrap_err();
        assert!(err.contains("WrongGrad"), "{err}");
    }

    #[test]
    fn accepts_correct_gradients() {
        let m = DistMult::new(4);
        let h = [0.5, -0.2, 0.3, 0.9];
        let r = [0.4, 0.4, 0.4, 0.4];
        let t = [0.1, 0.8, -0.5, 0.2];
        check_model_grads(&m, &h, &r, &t).unwrap();
    }
}

//! Dense embedding storage.
//!
//! An [`EmbeddingTable`] is `rows × dim` of `f32` in one contiguous
//! allocation — the layout used by PS shards, worker caches, and scratch
//! buffers alike. Rows are addressed by a dense local index; the mapping
//! from global [`ParamKey`]s to rows lives with the owner (shard router or
//! cache map).

/// A dense `rows × dim` table of `f32` embeddings.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingTable {
    dim: usize,
    data: Vec<f32>,
}

impl EmbeddingTable {
    /// A zero-initialized table.
    pub fn zeros(rows: usize, dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        Self {
            dim,
            data: vec![0.0; rows * dim],
        }
    }

    /// Build from existing data. `data.len()` must be a multiple of `dim`.
    pub fn from_data(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        assert_eq!(data.len() % dim, 0, "data length must be a multiple of dim");
        Self { dim, data }
    }

    /// Embedding dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Copy `src` into row `i`.
    #[inline]
    pub fn set_row(&mut self, i: usize, src: &[f32]) {
        self.row_mut(i).copy_from_slice(src);
    }

    /// Two distinct mutable rows at once (e.g. head and tail of a triple).
    ///
    /// # Panics
    /// Panics if `i == j`.
    pub fn rows_mut2(&mut self, i: usize, j: usize) -> (&mut [f32], &mut [f32]) {
        assert_ne!(i, j, "rows_mut2 requires distinct rows");
        let dim = self.dim;
        if i < j {
            let (a, b) = self.data.split_at_mut(j * dim);
            (&mut a[i * dim..(i + 1) * dim], &mut b[..dim])
        } else {
            let (a, b) = self.data.split_at_mut(i * dim);
            let second = &mut b[..dim];
            (second, &mut a[j * dim..(j + 1) * dim])
        }
    }

    /// The raw flat buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The raw flat buffer, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Grow to at least `rows` rows, zero-filling new space.
    pub fn resize_rows(&mut self, rows: usize) {
        self.data.resize(rows * self.dim, 0.0);
    }

    /// Bytes occupied by one row (the unit metered by the network model).
    #[inline]
    pub fn row_bytes(&self) -> usize {
        self.dim * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape() {
        let t = EmbeddingTable::zeros(3, 4);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.dim(), 4);
        assert!(t.row(2).iter().all(|&v| v == 0.0));
        assert_eq!(t.row_bytes(), 16);
    }

    #[test]
    fn set_and_read_rows() {
        let mut t = EmbeddingTable::zeros(2, 3);
        t.set_row(1, &[1.0, 2.0, 3.0]);
        assert_eq!(t.row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(t.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn rows_mut2_returns_correct_rows_either_order() {
        let mut t = EmbeddingTable::zeros(4, 2);
        for i in 0..4 {
            let v = i as f32;
            t.set_row(i, &[v, v]);
        }
        {
            let (a, b) = t.rows_mut2(1, 3);
            assert_eq!(a, &[1.0, 1.0]);
            assert_eq!(b, &[3.0, 3.0]);
            a[0] = 10.0;
            b[0] = 30.0;
        }
        {
            let (a, b) = t.rows_mut2(3, 1);
            assert_eq!(a[0], 30.0);
            assert_eq!(b[0], 10.0);
        }
    }

    #[test]
    #[should_panic(expected = "distinct rows")]
    fn rows_mut2_same_row_panics() {
        let mut t = EmbeddingTable::zeros(2, 2);
        let _ = t.rows_mut2(1, 1);
    }

    #[test]
    fn from_data_validates_multiple() {
        let t = EmbeddingTable::from_data(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.rows(), 2);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn from_data_rejects_ragged() {
        let _ = EmbeddingTable::from_data(3, vec![1.0, 2.0]);
    }

    #[test]
    fn resize_rows_zero_fills() {
        let mut t = EmbeddingTable::from_data(2, vec![1.0; 4]);
        t.resize_rows(4);
        assert_eq!(t.rows(), 4);
        assert_eq!(t.row(3), &[0.0, 0.0]);
        assert_eq!(t.row(0), &[1.0, 1.0]);
    }
}

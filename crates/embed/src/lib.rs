//! Embedding math substrate for HET-KG: dense embedding storage, knowledge
//! graph embedding (KGE) score functions with hand-derived analytic
//! gradients, loss functions, and negative sampling.
//!
//! The paper evaluates TransE and DistMult; this crate additionally
//! implements the related-work models its §II surveys (TransH, TransR,
//! TransD, ComplEx, RESCAL, HolE) behind one [`models::KgeModel`] trait, so
//! the training system is model-agnostic.
//!
//! All gradients are verified against central finite differences (see
//! [`gradcheck`]), which is what lets the distributed trainer skip an
//! autograd dependency entirely.
//!
//! # Example: score a triple and take a gradient step
//!
//! ```
//! use hetkg_embed::ModelKind;
//!
//! let model = ModelKind::TransEL2.build(4);
//! let (h, r, t) = ([0.1f32; 4], [0.2f32; 4], [0.4f32; 4]);
//! let before = model.score(&h, &r, &t);
//!
//! // Gradient ascent on the score moves the triple toward plausibility.
//! let (mut gh, mut gr, mut gt) = ([0.0f32; 4], [0.0f32; 4], [0.0f32; 4]);
//! model.grad(&h, &r, &t, 1.0, &mut gh, &mut gr, &mut gt);
//! let step = |x: &[f32; 4], g: &[f32; 4]| {
//!     let mut y = *x;
//!     for i in 0..4 { y[i] += 0.05 * g[i]; }
//!     y
//! };
//! let after = model.score(&step(&h, &gh), &step(&r, &gr), &step(&t, &gt));
//! assert!(after > before);
//! ```

pub mod checkpoint;
pub mod gradcheck;
pub mod init;
pub mod loss;
pub mod manifest;
pub mod math;
pub mod models;
pub mod negative;
pub mod storage;

pub use manifest::{CheckpointStore, LoadedCheckpoint, ManifestEntry};
pub use models::{KgeModel, ModelKind};
pub use storage::EmbeddingTable;

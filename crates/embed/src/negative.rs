//! Negative sampling: corrupting positive triples.
//!
//! Two strategies from the paper's §V:
//!
//! * **independent** — each positive is corrupted `n` times with fresh
//!   random entities: `O(b_p · d · (b_n + 1))` embedding traffic;
//! * **chunked** ("batched", as in PBG and DGL-KE) — the positive
//!   mini-batch is split into chunks of size `b_c`; all triples in a chunk
//!   share one set of `n` corrupting entities, cutting traffic to
//!   `O(b_p · d + b_p · k · d / b_c)`.
//!
//! Both corrupt heads and tails alternately (the standard protocol).

use hetkg_kgraph::{EntityId, Triple};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which slot of the triple a corruption replaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptSlot {
    /// The head entity was replaced.
    Head,
    /// The tail entity was replaced.
    Tail,
}

/// Negative sampling strategy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NegStrategy {
    /// Fresh corruptions per positive.
    Independent,
    /// PBG/DGL-KE-style shared corruptions per chunk of `chunk_size`
    /// positives.
    Chunked {
        /// Number of positives sharing one corruption set.
        chunk_size: usize,
    },
}

/// Configuration for a [`NegativeSampler`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NegConfig {
    /// Negatives generated per positive triple.
    pub per_positive: usize,
    /// Sampling strategy.
    pub strategy: NegStrategy,
}

impl Default for NegConfig {
    fn default() -> Self {
        Self {
            per_positive: 8,
            strategy: NegStrategy::Chunked { chunk_size: 32 },
        }
    }
}

/// A corrupted triple together with which slot was corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Negative {
    /// The corrupted triple.
    pub triple: Triple,
    /// Which slot was replaced.
    pub slot: CorruptSlot,
}

/// Deterministic negative sampler over a fixed entity universe.
#[derive(Debug)]
pub struct NegativeSampler {
    num_entities: u32,
    config: NegConfig,
    rng: StdRng,
}

impl NegativeSampler {
    /// Sampler over `num_entities` entities, seeded for reproducibility.
    pub fn new(num_entities: usize, config: NegConfig, seed: u64) -> Self {
        assert!(num_entities >= 2, "corruption needs at least two entities");
        assert!(
            config.per_positive > 0,
            "need at least one negative per positive"
        );
        if let NegStrategy::Chunked { chunk_size } = config.strategy {
            assert!(chunk_size > 0, "chunk size must be positive");
        }
        Self {
            num_entities: num_entities as u32,
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> NegConfig {
        self.config
    }

    /// Corrupt a mini-batch of positives, appending negatives to `out`.
    ///
    /// Heads and tails are corrupted alternately. Corruptions that happen
    /// to equal the original entity are re-drawn (bounded retries), so the
    /// produced triples genuinely differ from their positives.
    pub fn corrupt_batch(&mut self, positives: &[Triple], out: &mut Vec<Negative>) {
        out.reserve(positives.len() * self.config.per_positive);
        match self.config.strategy {
            NegStrategy::Independent => {
                for (i, &p) in positives.iter().enumerate() {
                    for k in 0..self.config.per_positive {
                        let slot = if (i + k) % 2 == 0 {
                            CorruptSlot::Head
                        } else {
                            CorruptSlot::Tail
                        };
                        let e = self.draw_entity_not(match slot {
                            CorruptSlot::Head => p.head,
                            CorruptSlot::Tail => p.tail,
                        });
                        let triple = match slot {
                            CorruptSlot::Head => p.with_head(e),
                            CorruptSlot::Tail => p.with_tail(e),
                        };
                        out.push(Negative { triple, slot });
                    }
                }
            }
            NegStrategy::Chunked { chunk_size } => {
                for (ci, chunk) in positives.chunks(chunk_size).enumerate() {
                    // One shared corruption set per chunk.
                    let shared: Vec<EntityId> = (0..self.config.per_positive)
                        .map(|_| EntityId(self.rng.random_range(0..self.num_entities)))
                        .collect();
                    let slot = if ci % 2 == 0 {
                        CorruptSlot::Head
                    } else {
                        CorruptSlot::Tail
                    };
                    for &p in chunk {
                        for &e in &shared {
                            // Skip degenerate corruption equal to the original.
                            let e = if e == p.head && slot == CorruptSlot::Head
                                || e == p.tail && slot == CorruptSlot::Tail
                            {
                                EntityId((e.0 + 1) % self.num_entities)
                            } else {
                                e
                            };
                            let triple = match slot {
                                CorruptSlot::Head => p.with_head(e),
                                CorruptSlot::Tail => p.with_tail(e),
                            };
                            out.push(Negative { triple, slot });
                        }
                    }
                }
            }
        }
    }

    /// Number of *distinct corrupting entities* drawn for a batch of
    /// `batch_len` positives — the quantity the chunked strategy reduces
    /// (§V's complexity argument, benched in the negative-sampling
    /// ablation).
    pub fn corruption_draws(&self, batch_len: usize) -> usize {
        match self.config.strategy {
            NegStrategy::Independent => batch_len * self.config.per_positive,
            NegStrategy::Chunked { chunk_size } => {
                batch_len.div_ceil(chunk_size) * self.config.per_positive
            }
        }
    }

    fn draw_entity_not(&mut self, avoid: EntityId) -> EntityId {
        // Bounded retries; fall back to a deterministic neighbour.
        for _ in 0..16 {
            let e = EntityId(self.rng.random_range(0..self.num_entities));
            if e != avoid {
                return e;
            }
        }
        EntityId((avoid.0 + 1) % self.num_entities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn positives(n: usize) -> Vec<Triple> {
        (0..n as u32)
            .map(|i| Triple::new(i % 50, i % 5, (i + 7) % 50))
            .collect()
    }

    #[test]
    fn independent_produces_expected_count() {
        let mut s = NegativeSampler::new(
            50,
            NegConfig {
                per_positive: 4,
                strategy: NegStrategy::Independent,
            },
            1,
        );
        let pos = positives(10);
        let mut out = Vec::new();
        s.corrupt_batch(&pos, &mut out);
        assert_eq!(out.len(), 40);
    }

    #[test]
    fn chunked_produces_expected_count() {
        let mut s = NegativeSampler::new(
            50,
            NegConfig {
                per_positive: 4,
                strategy: NegStrategy::Chunked { chunk_size: 8 },
            },
            1,
        );
        let pos = positives(16);
        let mut out = Vec::new();
        s.corrupt_batch(&pos, &mut out);
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn negatives_differ_from_their_positive() {
        for strategy in [
            NegStrategy::Independent,
            NegStrategy::Chunked { chunk_size: 4 },
        ] {
            let mut s = NegativeSampler::new(
                50,
                NegConfig {
                    per_positive: 8,
                    strategy,
                },
                2,
            );
            let pos = positives(20);
            let mut out = Vec::new();
            s.corrupt_batch(&pos, &mut out);
            for n in &out {
                // relation is never corrupted; the corrupted slot differs
                // from *some* positive (the one it came from): check it is
                // not identical to any positive in the batch with the same
                // relation+uncorrupted slots.
                match n.slot {
                    CorruptSlot::Head => {
                        assert!(!pos.contains(&n.triple) || n.triple.head != n.triple.tail)
                    }
                    CorruptSlot::Tail => {}
                }
            }
            // Stronger check: no produced negative equals its source exactly.
            // Since we only have the batch, verify none of the negatives is
            // in the positive list *and* was produced by a no-op corruption:
            // the sampler guarantees the corrupted entity differs, so count
            // how many negatives are byte-equal to a positive — can happen
            // only when the corruption coincides with another true triple,
            // which the uniform protocol allows.
            assert_eq!(out.len(), 160);
        }
    }

    #[test]
    fn corruption_entity_actually_changes() {
        let mut s = NegativeSampler::new(
            10,
            NegConfig {
                per_positive: 16,
                strategy: NegStrategy::Independent,
            },
            3,
        );
        let p = Triple::new(3, 0, 7);
        let mut out = Vec::new();
        s.corrupt_batch(&[p], &mut out);
        for n in &out {
            match n.slot {
                CorruptSlot::Head => assert_ne!(n.triple.head, p.head),
                CorruptSlot::Tail => assert_ne!(n.triple.tail, p.tail),
            }
        }
    }

    #[test]
    fn chunked_shares_corruptions_within_chunk() {
        let mut s = NegativeSampler::new(
            1000,
            NegConfig {
                per_positive: 3,
                strategy: NegStrategy::Chunked { chunk_size: 4 },
            },
            5,
        );
        let pos = positives(4); // one chunk
        let mut out = Vec::new();
        s.corrupt_batch(&pos, &mut out);
        // All 4 positives × 3 negatives use the same 3 corrupting heads.
        let heads: std::collections::HashSet<u32> = out.iter().map(|n| n.triple.head.0).collect();
        assert!(
            heads.len() <= 3 + 1,
            "expected shared corruption set, got {heads:?}"
        );
    }

    #[test]
    fn corruption_draws_reflects_complexity_reduction() {
        let ind = NegativeSampler::new(
            100,
            NegConfig {
                per_positive: 8,
                strategy: NegStrategy::Independent,
            },
            1,
        );
        let chk = NegativeSampler::new(
            100,
            NegConfig {
                per_positive: 8,
                strategy: NegStrategy::Chunked { chunk_size: 32 },
            },
            1,
        );
        assert_eq!(ind.corruption_draws(128), 1024);
        assert_eq!(chk.corruption_draws(128), 32);
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = NegConfig {
            per_positive: 4,
            strategy: NegStrategy::Independent,
        };
        let pos = positives(8);
        let mut a = Vec::new();
        let mut b = Vec::new();
        NegativeSampler::new(50, cfg, 9).corrupt_batch(&pos, &mut a);
        NegativeSampler::new(50, cfg, 9).corrupt_batch(&pos, &mut b);
        assert_eq!(a, b);
    }
}

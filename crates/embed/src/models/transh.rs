//! TransH (Wang et al., 2014): translations on relation-specific
//! hyperplanes.
//!
//! Each relation carries a translation vector `d_r` and a hyperplane normal
//! `w_r` (relation rows are `2d` wide: `[d_r | w_r]`). Entities are
//! projected onto the hyperplane before translating:
//!
//! `h⊥ = h − (w_rᵀ h) w_r`, `t⊥ = t − (w_rᵀ t) w_r`,
//! `score = −‖h⊥ + d_r − t⊥‖₂`.
//!
//! The unit-norm constraint on `w_r` is enforced softly by the trainer
//! (periodic renormalization); the score and gradient here use `w_r` as
//! stored, which keeps the backward pass exact for gradcheck.

use super::KgeModel;
use crate::math::{dot, norm2};

/// The TransH score function.
#[derive(Debug, Clone)]
pub struct TransH {
    dim: usize,
}

impl TransH {
    /// TransH over base dimension `dim`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0);
        Self { dim }
    }
}

impl KgeModel for TransH {
    fn name(&self) -> &'static str {
        "TransH"
    }

    fn base_dim(&self) -> usize {
        self.dim
    }

    fn relation_dim(&self) -> usize {
        2 * self.dim
    }

    fn score(&self, h: &[f32], r: &[f32], t: &[f32]) -> f32 {
        let d = self.dim;
        let (dr, w) = r.split_at(d);
        let wh = dot(w, h);
        let wt = dot(w, t);
        let mut u = vec![0.0f32; d];
        for i in 0..d {
            let hp = h[i] - wh * w[i];
            let tp = t[i] - wt * w[i];
            u[i] = hp + dr[i] - tp;
        }
        -norm2(&u)
    }

    fn grad(
        &self,
        h: &[f32],
        r: &[f32],
        t: &[f32],
        dscore: f32,
        gh: &mut [f32],
        gr: &mut [f32],
        gt: &mut [f32],
    ) {
        let d = self.dim;
        let (dr, w) = r.split_at(d);
        let wh = dot(w, h);
        let wt = dot(w, t);
        let mut u = vec![0.0f32; d];
        for i in 0..d {
            u[i] = (h[i] - wh * w[i]) + dr[i] - (t[i] - wt * w[i]);
        }
        let n = norm2(&u);
        if n == 0.0 {
            return;
        }
        // g = d score / d u = −u / ‖u‖, scaled by dscore.
        let coef = -dscore / n;
        // wᵀg needed for the projection chain rule.
        let wg: f32 = (0..d).map(|i| w[i] * coef * u[i]).sum();
        let (gdr, gw) = gr.split_at_mut(d);
        for i in 0..d {
            let g = coef * u[i];
            // ∂u/∂h = I − w wᵀ  (same for t with a minus sign)
            gh[i] += g - wg * w[i];
            gt[i] -= g - wg * w[i];
            gdr[i] += g;
            // ∂u/∂w: u = … − (wᵀh)w + (wᵀt)w ⇒
            // Jᵀ g = −[h (wᵀg) + (wᵀh) g] + [t (wᵀg) + (wᵀt) g]
            gw[i] += -(h[i] * wg + wh * g) + (t[i] * wg + wt * g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_model_grads;

    #[test]
    fn relation_rows_are_twice_as_wide() {
        let m = TransH::new(8);
        assert_eq!(m.entity_dim(), 8);
        assert_eq!(m.relation_dim(), 16);
    }

    #[test]
    fn zero_normal_reduces_to_transe() {
        // With w = 0 there is no projection: TransH == TransE-L2.
        let m = TransH::new(3);
        let h = [0.2, -0.1, 0.4];
        let dr = [0.3, 0.3, 0.3];
        let t = [0.6, 0.1, 0.9];
        let r = [dr[0], dr[1], dr[2], 0.0, 0.0, 0.0];
        let te = super::super::TransE::new(3, super::super::Norm::L2);
        assert!((m.score(&h, &r, &t) - te.score(&h, &dr, &t)).abs() < 1e-6);
    }

    #[test]
    fn projection_removes_normal_component() {
        // h differs from t only along w: after projection the residual is
        // just d_r.
        let m = TransH::new(2);
        let w = [1.0, 0.0];
        let dr = [0.0, 0.5];
        let r = [dr[0], dr[1], w[0], w[1]];
        let h = [3.0, 1.0];
        let t = [-7.0, 1.0]; // same after projecting out x
        let s = m.score(&h, &r, &t);
        assert!((s - (-0.5)).abs() < 1e-6, "score {s}");
    }

    #[test]
    fn gradcheck() {
        let m = TransH::new(4);
        let h = [0.3, -0.4, 0.5, 0.1];
        let r = [0.2, 0.2, -0.3, 0.4, 0.5, -0.1, 0.2, 0.3];
        let t = [-0.1, 0.6, 0.2, -0.5];
        check_model_grads(&m, &h, &r, &t).unwrap();
    }
}

//! RESCAL (Nickel et al., 2011): full bilinear scoring.
//!
//! Each relation is a `d×d` matrix (relation rows are `d²` wide, row-major):
//!
//! `score = hᵀ M_r t`.
//!
//! The most expressive — and most parameter-hungry — of the semantic
//! matching family; DistMult is its diagonal restriction.

use super::KgeModel;
use crate::math::{dot, matvec};

/// The RESCAL score function.
#[derive(Debug, Clone)]
pub struct Rescal {
    dim: usize,
}

impl Rescal {
    /// RESCAL over base dimension `dim` (relation rows are `dim²` floats).
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0);
        Self { dim }
    }
}

impl KgeModel for Rescal {
    fn name(&self) -> &'static str {
        "RESCAL"
    }

    fn base_dim(&self) -> usize {
        self.dim
    }

    fn relation_dim(&self) -> usize {
        self.dim * self.dim
    }

    fn score(&self, h: &[f32], r: &[f32], t: &[f32]) -> f32 {
        let d = self.dim;
        let mut mt = vec![0.0f32; d];
        matvec(r, t, &mut mt);
        dot(h, &mt)
    }

    fn grad(
        &self,
        h: &[f32],
        r: &[f32],
        t: &[f32],
        dscore: f32,
        gh: &mut [f32],
        gr: &mut [f32],
        gt: &mut [f32],
    ) {
        let d = self.dim;
        // gh = M t ; gt = Mᵀ h ; gM_ij = h_i t_j
        for i in 0..d {
            let row = &r[i * d..(i + 1) * d];
            gh[i] += dscore * dot(row, t);
            let hi = dscore * h[i];
            for j in 0..d {
                gt[j] += hi * row[j];
                gr[i * d + j] += hi * t[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_model_grads;

    #[test]
    fn diagonal_matrix_reduces_to_distmult() {
        let d = 3;
        let m = Rescal::new(d);
        let h = [0.2, -0.1, 0.4];
        let rv = [0.3, 0.6, 0.9];
        let t = [0.6, 0.1, 0.9];
        let mut r = vec![0.0f32; d * d];
        for i in 0..d {
            r[i * d + i] = rv[i];
        }
        let dm = super::super::DistMult::new(d);
        assert!((m.score(&h, &r, &t) - dm.score(&h, &rv, &t)).abs() < 1e-6);
    }

    #[test]
    fn identity_matrix_gives_dot_product() {
        let d = 2;
        let m = Rescal::new(d);
        let r = [1.0, 0.0, 0.0, 1.0];
        let s = m.score(&[2.0, 3.0], &r, &[4.0, 5.0]);
        assert!((s - 23.0).abs() < 1e-6);
    }

    #[test]
    fn gradcheck() {
        let d = 3;
        let m = Rescal::new(d);
        let h = [0.3, -0.4, 0.5];
        let t = [-0.1, 0.6, 0.2];
        let r: Vec<f32> = (0..d * d)
            .map(|i| ((i as f32) * 0.53).cos() * 0.5)
            .collect();
        check_model_grads(&m, &h, &r, &t).unwrap();
    }
}

//! TransE (Bordes et al., 2013): relations as translations.
//!
//! `score(h, r, t) = −‖h + r − t‖` under L1 or L2. The original
//! translational-distance model, and one of the two the paper evaluates.

use super::KgeModel;
use crate::math::{norm1, norm2, residual_norm1, residual_norm2, translation_residual};
use crate::storage::EmbeddingTable;

/// Distance norm used by [`TransE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Norm {
    /// Manhattan distance.
    L1,
    /// Euclidean distance.
    L2,
}

/// The TransE score function.
#[derive(Debug, Clone)]
pub struct TransE {
    dim: usize,
    norm: Norm,
}

impl TransE {
    /// TransE over base dimension `dim` with the given norm.
    pub fn new(dim: usize, norm: Norm) -> Self {
        assert!(dim > 0);
        Self { dim, norm }
    }

    /// The norm in use.
    pub fn norm(&self) -> Norm {
        self.norm
    }
}

impl KgeModel for TransE {
    fn name(&self) -> &'static str {
        match self.norm {
            Norm::L1 => "TransE-L1",
            Norm::L2 => "TransE-L2",
        }
    }

    fn base_dim(&self) -> usize {
        self.dim
    }

    fn score(&self, h: &[f32], r: &[f32], t: &[f32]) -> f32 {
        let mut u = vec![0.0f32; self.dim];
        translation_residual(h, r, t, &mut u);
        match self.norm {
            Norm::L1 => -norm1(&u),
            Norm::L2 => -norm2(&u),
        }
    }

    /// Blocked tail scoring with the per-query translation `q = h + r`
    /// hoisted out of the candidate loop. Bit-identical to the scalar
    /// path: the residual is still `(h[i] + r[i]) - t[i]` — the same two
    /// additions in the same order — and the fused residual-norm kernels
    /// accumulate in exactly the order `translation_residual` + norm
    /// would, just without storing the residual in between.
    fn score_tails_block(
        &self,
        h: &[f32],
        r: &[f32],
        tails: &EmbeddingTable,
        ids: &[u32],
        out: &mut [f32],
        scratch: &mut Vec<f32>,
    ) {
        debug_assert_eq!(ids.len(), out.len());
        let d = self.dim;
        scratch.resize(d, 0.0);
        let q = &mut scratch[..d];
        for i in 0..d {
            q[i] = h[i] + r[i];
        }
        match self.norm {
            Norm::L1 => {
                for (o, &id) in out.iter_mut().zip(ids) {
                    *o = -residual_norm1(q, tails.row(id as usize));
                }
            }
            Norm::L2 => {
                for (o, &id) in out.iter_mut().zip(ids) {
                    *o = -residual_norm2(q, tails.row(id as usize));
                }
            }
        }
    }

    /// Blocked head scoring. Nothing to hoist on this side (precomputing
    /// `r - t` would reassociate the residual), so the win over the scalar
    /// path is dropping the per-candidate `Vec` allocation and dynamic
    /// dispatch; the float work is operation-for-operation the same.
    fn score_heads_block(
        &self,
        heads: &EmbeddingTable,
        ids: &[u32],
        r: &[f32],
        t: &[f32],
        out: &mut [f32],
        scratch: &mut Vec<f32>,
    ) {
        debug_assert_eq!(ids.len(), out.len());
        let d = self.dim;
        scratch.resize(d, 0.0);
        let u = &mut scratch[..d];
        for (o, &id) in out.iter_mut().zip(ids) {
            translation_residual(heads.row(id as usize), r, t, u);
            *o = match self.norm {
                Norm::L1 => -norm1(u),
                Norm::L2 => -norm2(u),
            };
        }
    }

    fn grad(
        &self,
        h: &[f32],
        r: &[f32],
        t: &[f32],
        dscore: f32,
        gh: &mut [f32],
        gr: &mut [f32],
        gt: &mut [f32],
    ) {
        let mut u = vec![0.0f32; self.dim];
        translation_residual(h, r, t, &mut u);
        match self.norm {
            Norm::L1 => {
                // d(−Σ|u_i|)/du_i = −sign(u_i); subgradient 0 at u_i == 0.
                for i in 0..self.dim {
                    let g = -dscore * u[i].signum() * if u[i] == 0.0 { 0.0 } else { 1.0 };
                    gh[i] += g;
                    gr[i] += g;
                    gt[i] -= g;
                }
            }
            Norm::L2 => {
                let n = norm2(&u);
                if n == 0.0 {
                    return; // score is at its max; zero (sub)gradient.
                }
                let inv = dscore * (-1.0 / n);
                for i in 0..self.dim {
                    let g = inv * u[i];
                    gh[i] += g;
                    gr[i] += g;
                    gt[i] -= g;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_model_grads;

    #[test]
    fn perfect_translation_scores_zero() {
        let m = TransE::new(3, Norm::L2);
        let h = [1.0, 2.0, 3.0];
        let r = [0.5, 0.5, 0.5];
        let t = [1.5, 2.5, 3.5];
        assert!((m.score(&h, &r, &t)).abs() < 1e-6);
    }

    #[test]
    fn worse_translation_scores_lower() {
        let m = TransE::new(2, Norm::L2);
        let h = [0.0, 0.0];
        let r = [1.0, 0.0];
        let good = m.score(&h, &r, &[1.0, 0.0]);
        let bad = m.score(&h, &r, &[5.0, 5.0]);
        assert!(good > bad);
    }

    #[test]
    fn l1_and_l2_agree_on_axis_aligned_residual() {
        let h = [0.0, 0.0];
        let r = [0.0, 0.0];
        let t = [2.0, 0.0];
        assert_eq!(TransE::new(2, Norm::L1).score(&h, &r, &t), -2.0);
        assert_eq!(TransE::new(2, Norm::L2).score(&h, &r, &t), -2.0);
    }

    #[test]
    fn l2_gradcheck() {
        let m = TransE::new(5, Norm::L2);
        let h = [0.3, -0.4, 0.5, 0.1, -0.9];
        let r = [0.2, 0.2, -0.3, 0.4, 0.0];
        let t = [-0.1, 0.6, 0.2, -0.5, 0.3];
        check_model_grads(&m, &h, &r, &t).unwrap();
    }

    #[test]
    fn l1_gradcheck_away_from_kinks() {
        // L1 is non-differentiable where a residual coordinate is 0;
        // pick a point with all coordinates clearly non-zero.
        let m = TransE::new(4, Norm::L1);
        let h = [0.9, -0.7, 0.6, 0.3];
        let r = [0.5, 0.5, 0.5, 0.5];
        let t = [-0.3, 0.4, -0.2, -0.6];
        check_model_grads(&m, &h, &r, &t).unwrap();
    }

    #[test]
    fn zero_residual_gradient_is_zero_not_nan() {
        let m = TransE::new(2, Norm::L2);
        let h = [1.0, 1.0];
        let r = [0.0, 0.0];
        let t = [1.0, 1.0];
        let mut gh = [0.0; 2];
        let mut gr = [0.0; 2];
        let mut gt = [0.0; 2];
        m.grad(&h, &r, &t, 1.0, &mut gh, &mut gr, &mut gt);
        assert!(gh
            .iter()
            .chain(&gr)
            .chain(&gt)
            .all(|v| v.is_finite() && *v == 0.0));
    }
}

//! HolE (Nickel et al., 2016): holographic embeddings via circular
//! correlation.
//!
//! `score = rᵀ (h ⋆ t)` where `(h ⋆ t)_k = Σ_i h_i · t_{(k+i) mod d}`.
//!
//! Compresses RESCAL's pairwise interactions into `d` dimensions — the
//! paper's related-work section describes it as combining RESCAL's
//! expressiveness with DistMult's simplicity. The correlation here is the
//! direct O(d²) form (an FFT would need a transform dependency; at the
//! dimensions used in the experiments the direct form is fast enough).

use super::KgeModel;

/// The HolE score function.
#[derive(Debug, Clone)]
pub struct HolE {
    dim: usize,
}

impl HolE {
    /// HolE over dimension `dim`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0);
        Self { dim }
    }
}

impl KgeModel for HolE {
    fn name(&self) -> &'static str {
        "HolE"
    }

    fn base_dim(&self) -> usize {
        self.dim
    }

    fn score(&self, h: &[f32], r: &[f32], t: &[f32]) -> f32 {
        let d = self.dim;
        let mut acc = 0.0f32;
        for k in 0..d {
            let mut corr = 0.0f32;
            for i in 0..d {
                corr += h[i] * t[(k + i) % d];
            }
            acc += r[k] * corr;
        }
        acc
    }

    fn grad(
        &self,
        h: &[f32],
        r: &[f32],
        t: &[f32],
        dscore: f32,
        gh: &mut [f32],
        gr: &mut [f32],
        gt: &mut [f32],
    ) {
        let d = self.dim;
        for k in 0..d {
            let mut corr = 0.0f32;
            for i in 0..d {
                corr += h[i] * t[(k + i) % d];
            }
            gr[k] += dscore * corr;
            let rk = dscore * r[k];
            for i in 0..d {
                // score term r_k h_i t_{(k+i)%d}
                gh[i] += rk * t[(k + i) % d];
                gt[(k + i) % d] += rk * h[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_model_grads;

    #[test]
    fn dim1_is_product() {
        let m = HolE::new(1);
        assert!((m.score(&[2.0], &[3.0], &[4.0]) - 24.0).abs() < 1e-6);
    }

    #[test]
    fn score_matches_manual_correlation() {
        let m = HolE::new(2);
        let h = [1.0, 2.0];
        let t = [3.0, 4.0];
        // (h⋆t)_0 = h0*t0 + h1*t1 = 11 ; (h⋆t)_1 = h0*t1 + h1*t0 = 10
        let r = [1.0, 0.0];
        assert!((m.score(&h, &r, &t) - 11.0).abs() < 1e-6);
        let r = [0.0, 1.0];
        assert!((m.score(&h, &r, &t) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn gradcheck() {
        let m = HolE::new(4);
        let h = [0.3, -0.4, 0.5, 0.1];
        let r = [0.2, 0.2, -0.3, 0.4];
        let t = [-0.1, 0.6, 0.2, -0.5];
        check_model_grads(&m, &h, &r, &t).unwrap();
    }
}

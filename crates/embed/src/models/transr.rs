//! TransR (Lin et al., 2015): relation-specific projection *matrices*.
//!
//! Each relation carries a translation `r` and a full `d×d` projection
//! matrix `M_r` (relation rows are `d + d²` wide: `[r | M_r row-major]`):
//!
//! `score = −‖M_r h + r − M_r t‖₂`.
//!
//! The quadratic relation width is the cost the paper's related-work section
//! notes; it also makes TransR a good stress test for variable-width rows in
//! the PS and cache.

use super::KgeModel;
use crate::math::{matvec, norm2};

/// The TransR score function.
#[derive(Debug, Clone)]
pub struct TransR {
    dim: usize,
}

impl TransR {
    /// TransR over base dimension `dim` (projection matrices are `dim×dim`).
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0);
        Self { dim }
    }
}

impl KgeModel for TransR {
    fn name(&self) -> &'static str {
        "TransR"
    }

    fn base_dim(&self) -> usize {
        self.dim
    }

    fn relation_dim(&self) -> usize {
        self.dim + self.dim * self.dim
    }

    fn score(&self, h: &[f32], r: &[f32], t: &[f32]) -> f32 {
        let d = self.dim;
        let (rv, m) = r.split_at(d);
        let mut mh = vec![0.0f32; d];
        let mut mt = vec![0.0f32; d];
        matvec(m, h, &mut mh);
        matvec(m, t, &mut mt);
        let mut u = vec![0.0f32; d];
        for i in 0..d {
            u[i] = mh[i] + rv[i] - mt[i];
        }
        -norm2(&u)
    }

    fn grad(
        &self,
        h: &[f32],
        r: &[f32],
        t: &[f32],
        dscore: f32,
        gh: &mut [f32],
        gr: &mut [f32],
        gt: &mut [f32],
    ) {
        let d = self.dim;
        let (rv, m) = r.split_at(d);
        let mut mh = vec![0.0f32; d];
        let mut mt = vec![0.0f32; d];
        matvec(m, h, &mut mh);
        matvec(m, t, &mut mt);
        let mut u = vec![0.0f32; d];
        for i in 0..d {
            u[i] = mh[i] + rv[i] - mt[i];
        }
        let n = norm2(&u);
        if n == 0.0 {
            return;
        }
        let coef = -dscore / n;
        let (grv, gm) = gr.split_at_mut(d);
        for i in 0..d {
            let g = coef * u[i];
            grv[i] += g;
            // dM: g (h − t)ᵀ, row-major
            for j in 0..d {
                gm[i * d + j] += g * (h[j] - t[j]);
            }
        }
        // dh = Mᵀ g, dt = −Mᵀ g
        for j in 0..d {
            let mut acc = 0.0f32;
            for i in 0..d {
                acc += m[i * d + j] * coef * u[i];
            }
            gh[j] += acc;
            gt[j] -= acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_model_grads;

    #[test]
    fn relation_rows_are_d_plus_d_squared() {
        let m = TransR::new(5);
        assert_eq!(m.relation_dim(), 5 + 25);
    }

    #[test]
    fn identity_matrix_reduces_to_transe() {
        let d = 3;
        let m = TransR::new(d);
        let h = [0.2, -0.1, 0.4];
        let rv = [0.3, 0.3, 0.3];
        let t = [0.6, 0.1, 0.9];
        // r = [rv | I]
        let mut r = vec![0.0f32; d + d * d];
        r[..d].copy_from_slice(&rv);
        for i in 0..d {
            r[d + i * d + i] = 1.0;
        }
        let te = super::super::TransE::new(d, super::super::Norm::L2);
        assert!((m.score(&h, &r, &t) - te.score(&h, &rv, &t)).abs() < 1e-6);
    }

    #[test]
    fn gradcheck() {
        let d = 3;
        let m = TransR::new(d);
        let h = [0.3, -0.4, 0.5];
        let t = [-0.1, 0.6, 0.2];
        let r: Vec<f32> = (0..d + d * d)
            .map(|i| ((i as f32) * 0.37).sin() * 0.5)
            .collect();
        check_model_grads(&m, &h, &r, &t).unwrap();
    }
}

//! TransD (Ji et al., 2015): projection *vectors* instead of matrices.
//!
//! Entities and relations each carry an embedding and a projection vector
//! (both rows are `2d` wide: `[e | e_p]`, `[r | r_p]`). The dynamic mapping
//! matrix `M = r_p e_pᵀ + I` is never materialized:
//!
//! `h⊥ = h + (h_pᵀ h) r_p`, `t⊥ = t + (t_pᵀ t) r_p`,
//! `score = −‖h⊥ + r − t⊥‖₂`.
//!
//! This recovers TransR's expressiveness at TransE-like cost — the paper's
//! related-work section highlights exactly this trade-off.

use super::KgeModel;
use crate::math::{dot, norm2};

/// The TransD score function.
#[derive(Debug, Clone)]
pub struct TransD {
    dim: usize,
}

impl TransD {
    /// TransD over base dimension `dim`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0);
        Self { dim }
    }
}

impl KgeModel for TransD {
    fn name(&self) -> &'static str {
        "TransD"
    }

    fn base_dim(&self) -> usize {
        self.dim
    }

    fn entity_dim(&self) -> usize {
        2 * self.dim
    }

    fn relation_dim(&self) -> usize {
        2 * self.dim
    }

    fn score(&self, h: &[f32], r: &[f32], t: &[f32]) -> f32 {
        let d = self.dim;
        let (hv, hp) = h.split_at(d);
        let (tv, tp) = t.split_at(d);
        let (rv, rp) = r.split_at(d);
        let hph = dot(hp, hv);
        let tpt = dot(tp, tv);
        let mut u = vec![0.0f32; d];
        for i in 0..d {
            let hproj = hv[i] + hph * rp[i];
            let tproj = tv[i] + tpt * rp[i];
            u[i] = hproj + rv[i] - tproj;
        }
        -norm2(&u)
    }

    fn grad(
        &self,
        h: &[f32],
        r: &[f32],
        t: &[f32],
        dscore: f32,
        gh: &mut [f32],
        gr: &mut [f32],
        gt: &mut [f32],
    ) {
        let d = self.dim;
        let (hv, hp) = h.split_at(d);
        let (tv, tp) = t.split_at(d);
        let (rv, rp) = r.split_at(d);
        let hph = dot(hp, hv);
        let tpt = dot(tp, tv);
        let mut u = vec![0.0f32; d];
        for i in 0..d {
            u[i] = (hv[i] + hph * rp[i]) + rv[i] - (tv[i] + tpt * rp[i]);
        }
        let n = norm2(&u);
        if n == 0.0 {
            return;
        }
        let coef = -dscore / n;
        // rpᵀ g, needed by the chain rule through the scalar dot products.
        let rpg: f32 = (0..d).map(|i| rp[i] * coef * u[i]).sum();
        let (ghv, ghp) = gh.split_at_mut(d);
        let (gtv, gtp) = gt.split_at_mut(d);
        let (grv, grp) = gr.split_at_mut(d);
        for i in 0..d {
            let g = coef * u[i];
            // ∂u/∂hv = I + rp hpᵀ ⇒ ghv = g + hp (rpᵀg)
            ghv[i] += g + hp[i] * rpg;
            // ∂u/∂hp = rp hvᵀ ⇒ ghp = hv (rpᵀg)
            ghp[i] += hv[i] * rpg;
            gtv[i] -= g + tp[i] * rpg;
            gtp[i] -= tv[i] * rpg;
            grv[i] += g;
            // ∂u/∂rp = (hph − tpt) I ⇒ grp = (hph − tpt) g
            grp[i] += (hph - tpt) * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_model_grads;

    #[test]
    fn both_rows_are_twice_as_wide() {
        let m = TransD::new(6);
        assert_eq!(m.entity_dim(), 12);
        assert_eq!(m.relation_dim(), 12);
    }

    #[test]
    fn zero_projections_reduce_to_transe() {
        let d = 3;
        let m = TransD::new(d);
        let hv = [0.2, -0.1, 0.4];
        let rv = [0.3, 0.3, 0.3];
        let tv = [0.6, 0.1, 0.9];
        let pad = [0.0f32; 3];
        let h: Vec<f32> = hv.iter().chain(&pad).copied().collect();
        let r: Vec<f32> = rv.iter().chain(&pad).copied().collect();
        let t: Vec<f32> = tv.iter().chain(&pad).copied().collect();
        let te = super::super::TransE::new(d, super::super::Norm::L2);
        assert!((m.score(&h, &r, &t) - te.score(&hv, &rv, &tv)).abs() < 1e-6);
    }

    #[test]
    fn gradcheck() {
        let m = TransD::new(4);
        let h = [0.3, -0.4, 0.5, 0.1, 0.2, -0.2, 0.1, 0.4];
        let r = [0.2, 0.2, -0.3, 0.4, -0.1, 0.3, 0.2, -0.4];
        let t = [-0.1, 0.6, 0.2, -0.5, 0.3, 0.1, -0.2, 0.2];
        check_model_grads(&m, &h, &r, &t).unwrap();
    }
}

//! ComplEx (Trouillon et al., 2016): complex-valued diagonal bilinear.
//!
//! Rows are `2d` wide, `[real | imag]`. With `h = a+bi`, `r = c+di`,
//! `t = e+fi` per coordinate:
//!
//! `score = Re(Σ_k h_k r_k conj(t_k)) = Σ_k e(ac − bd) + f(ad + bc)`.
//!
//! Extends DistMult to asymmetric relations — the property the paper's
//! related-work section credits it with.

use super::KgeModel;

/// The ComplEx score function.
#[derive(Debug, Clone)]
pub struct ComplEx {
    dim: usize,
}

impl ComplEx {
    /// ComplEx over base dimension `dim` (rows are `2*dim` floats).
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0);
        Self { dim }
    }
}

impl KgeModel for ComplEx {
    fn name(&self) -> &'static str {
        "ComplEx"
    }

    fn base_dim(&self) -> usize {
        self.dim
    }

    fn entity_dim(&self) -> usize {
        2 * self.dim
    }

    fn relation_dim(&self) -> usize {
        2 * self.dim
    }

    fn score(&self, h: &[f32], r: &[f32], t: &[f32]) -> f32 {
        let d = self.dim;
        let (a, b) = h.split_at(d); // re, im
        let (c, dd) = r.split_at(d);
        let (e, f) = t.split_at(d);
        let mut acc = 0.0f32;
        for k in 0..d {
            acc += e[k] * (a[k] * c[k] - b[k] * dd[k]) + f[k] * (a[k] * dd[k] + b[k] * c[k]);
        }
        acc
    }

    fn grad(
        &self,
        h: &[f32],
        r: &[f32],
        t: &[f32],
        dscore: f32,
        gh: &mut [f32],
        gr: &mut [f32],
        gt: &mut [f32],
    ) {
        let d = self.dim;
        let (a, b) = h.split_at(d);
        let (c, dd) = r.split_at(d);
        let (e, f) = t.split_at(d);
        let (ga, gb) = gh.split_at_mut(d);
        let (gc, gd) = gr.split_at_mut(d);
        let (ge, gf) = gt.split_at_mut(d);
        for k in 0..d {
            ga[k] += dscore * (c[k] * e[k] + dd[k] * f[k]);
            gb[k] += dscore * (-dd[k] * e[k] + c[k] * f[k]);
            gc[k] += dscore * (a[k] * e[k] + b[k] * f[k]);
            gd[k] += dscore * (-b[k] * e[k] + a[k] * f[k]);
            ge[k] += dscore * (a[k] * c[k] - b[k] * dd[k]);
            gf[k] += dscore * (a[k] * dd[k] + b[k] * c[k]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_model_grads;

    #[test]
    fn real_embeddings_reduce_to_distmult() {
        let d = 3;
        let m = ComplEx::new(d);
        let hv = [0.2, -0.1, 0.4];
        let rv = [0.3, 0.3, 0.3];
        let tv = [0.6, 0.1, 0.9];
        let pad = [0.0f32; 3];
        let h: Vec<f32> = hv.iter().chain(&pad).copied().collect();
        let r: Vec<f32> = rv.iter().chain(&pad).copied().collect();
        let t: Vec<f32> = tv.iter().chain(&pad).copied().collect();
        let dm = super::super::DistMult::new(d);
        assert!((m.score(&h, &r, &t) - dm.score(&hv, &rv, &tv)).abs() < 1e-6);
    }

    #[test]
    fn models_asymmetric_relations() {
        // With non-zero imaginary parts, score(h,r,t) != score(t,r,h).
        let m = ComplEx::new(2);
        let h = [0.5, 0.2, 0.3, -0.4];
        let r = [0.1, 0.7, 0.6, 0.2];
        let t = [-0.3, 0.9, 0.2, 0.5];
        let fwd = m.score(&h, &r, &t);
        let bwd = m.score(&t, &r, &h);
        assert!(
            (fwd - bwd).abs() > 1e-4,
            "expected asymmetry, got {fwd} vs {bwd}"
        );
    }

    #[test]
    fn gradcheck() {
        let m = ComplEx::new(3);
        let h = [0.3, -0.4, 0.5, 0.1, 0.2, -0.2];
        let r = [0.2, 0.2, -0.3, 0.4, -0.1, 0.3];
        let t = [-0.1, 0.6, 0.2, -0.5, 0.3, 0.1];
        check_model_grads(&m, &h, &r, &t).unwrap();
    }
}

//! DistMult (Yang et al., 2015): diagonal bilinear scoring.
//!
//! `score(h, r, t) = Σ_i h_i · r_i · t_i`. The second model the paper
//! evaluates. Symmetric in h/t by construction.

use super::KgeModel;
use crate::storage::EmbeddingTable;

/// The DistMult score function.
#[derive(Debug, Clone)]
pub struct DistMult {
    dim: usize,
}

impl DistMult {
    /// DistMult over dimension `dim`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0);
        Self { dim }
    }
}

impl KgeModel for DistMult {
    fn name(&self) -> &'static str {
        "DistMult"
    }

    fn base_dim(&self) -> usize {
        self.dim
    }

    fn score(&self, h: &[f32], r: &[f32], t: &[f32]) -> f32 {
        let mut acc = 0.0f32;
        for i in 0..self.dim {
            acc += h[i] * r[i] * t[i];
        }
        acc
    }

    /// Blocked tail scoring with the per-query product `h ⊙ r` hoisted out
    /// of the candidate loop. Bit-identical to the scalar path:
    /// `h[i] * r[i] * t[i]` parses as `(h[i] * r[i]) * t[i]`, so
    /// precomputing `hr[i] = h[i] * r[i]` performs the same multiplies in
    /// the same order, and the accumulation stays the same sequential sum.
    fn score_tails_block(
        &self,
        h: &[f32],
        r: &[f32],
        tails: &EmbeddingTable,
        ids: &[u32],
        out: &mut [f32],
        scratch: &mut Vec<f32>,
    ) {
        debug_assert_eq!(ids.len(), out.len());
        let d = self.dim;
        scratch.resize(d, 0.0);
        let hr = &mut scratch[..d];
        for i in 0..d {
            hr[i] = h[i] * r[i];
        }
        for (o, &id) in out.iter_mut().zip(ids) {
            let t = tails.row(id as usize);
            let mut acc = 0.0f32;
            for i in 0..d {
                acc += hr[i] * t[i];
            }
            *o = acc;
        }
    }

    fn grad(
        &self,
        h: &[f32],
        r: &[f32],
        t: &[f32],
        dscore: f32,
        gh: &mut [f32],
        gr: &mut [f32],
        gt: &mut [f32],
    ) {
        for i in 0..self.dim {
            gh[i] += dscore * r[i] * t[i];
            gr[i] += dscore * h[i] * t[i];
            gt[i] += dscore * h[i] * r[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_model_grads;

    #[test]
    fn score_matches_manual_sum() {
        let m = DistMult::new(3);
        let s = m.score(&[1.0, 2.0, 3.0], &[1.0, 0.5, 2.0], &[2.0, 2.0, 1.0]);
        assert!((s - (2.0 + 2.0 + 6.0)).abs() < 1e-6);
    }

    #[test]
    fn symmetric_in_head_and_tail() {
        let m = DistMult::new(4);
        let h = [0.1, 0.2, 0.3, 0.4];
        let r = [0.9, -0.8, 0.7, -0.6];
        let t = [0.5, 0.6, 0.7, 0.8];
        assert!((m.score(&h, &r, &t) - m.score(&t, &r, &h)).abs() < 1e-6);
    }

    #[test]
    fn gradcheck() {
        let m = DistMult::new(6);
        let h = [0.3, -0.4, 0.5, 0.1, -0.9, 0.2];
        let r = [0.2, 0.2, -0.3, 0.4, 0.0, -0.7];
        let t = [-0.1, 0.6, 0.2, -0.5, 0.3, 0.8];
        check_model_grads(&m, &h, &r, &t).unwrap();
    }

    #[test]
    fn dscore_scales_gradient_linearly() {
        let m = DistMult::new(2);
        let h = [1.0, 2.0];
        let r = [3.0, 4.0];
        let t = [5.0, 6.0];
        let mut g1 = ([0.0f32; 2], [0.0f32; 2], [0.0f32; 2]);
        let mut g3 = ([0.0f32; 2], [0.0f32; 2], [0.0f32; 2]);
        m.grad(&h, &r, &t, 1.0, &mut g1.0, &mut g1.1, &mut g1.2);
        m.grad(&h, &r, &t, 3.0, &mut g3.0, &mut g3.1, &mut g3.2);
        for i in 0..2 {
            assert!((g3.0[i] - 3.0 * g1.0[i]).abs() < 1e-6);
            assert!((g3.1[i] - 3.0 * g1.1[i]).abs() < 1e-6);
            assert!((g3.2[i] - 3.0 * g1.2[i]).abs() < 1e-6);
        }
    }
}

//! KGE score functions with analytic gradients.
//!
//! Every model implements [`KgeModel`]: a scalar score for a triple's three
//! embedding slices plus the gradient of that score with respect to each
//! slice. Models may use different per-entity and per-relation parameter
//! widths (e.g. TransR stores a `d×d` projection matrix per relation), which
//! is why [`KgeModel::entity_dim`]/[`KgeModel::relation_dim`] exist — the
//! parameter server and caches size their rows from these.
//!
//! Higher scores mean "more plausible"; translational models return negated
//! distances so this convention holds uniformly.

mod complex;
mod distmult;
mod hole;
mod rescal;
mod transd;
mod transe;
mod transh;
mod transr;

pub use complex::ComplEx;
pub use distmult::DistMult;
pub use hole::HolE;
pub use rescal::Rescal;
pub use transd::TransD;
pub use transe::{Norm, TransE};
pub use transh::TransH;
pub use transr::TransR;

use serde::{Deserialize, Serialize};

/// A knowledge-graph embedding score function with analytic gradients.
pub trait KgeModel: Send + Sync {
    /// Human-readable model name (e.g. `"TransE-L2"`).
    fn name(&self) -> &'static str;

    /// The base embedding dimension `d` the model was built with.
    fn base_dim(&self) -> usize;

    /// Width of one entity's parameter row.
    fn entity_dim(&self) -> usize {
        self.base_dim()
    }

    /// Width of one relation's parameter row.
    fn relation_dim(&self) -> usize {
        self.base_dim()
    }

    /// Score of triple `(h, r, t)`; higher = more plausible.
    ///
    /// Slice lengths must equal `entity_dim`/`relation_dim` respectively.
    fn score(&self, h: &[f32], r: &[f32], t: &[f32]) -> f32;

    /// Accumulate `dscore * ∂score/∂{h,r,t}` into `gh`, `gr`, `gt`.
    ///
    /// Gradients are *accumulated* (`+=`), so callers can sum over a batch
    /// into shared buffers; zero them first for a fresh gradient.
    #[allow(clippy::too_many_arguments)]
    fn grad(
        &self,
        h: &[f32],
        r: &[f32],
        t: &[f32],
        dscore: f32,
        gh: &mut [f32],
        gr: &mut [f32],
        gt: &mut [f32],
    );
}

/// Serializable model selector, used by training configs and the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// TransE with L1 distance.
    TransEL1,
    /// TransE with L2 distance.
    TransEL2,
    /// TransH (relation-specific hyperplanes).
    TransH,
    /// TransR (relation-specific projection matrices; relation rows are
    /// `d + d²` wide).
    TransR,
    /// TransD (projection vectors; entity and relation rows are `2d` wide).
    TransD,
    /// DistMult (diagonal bilinear).
    DistMult,
    /// ComplEx (complex-valued DistMult; rows are `2d` wide).
    ComplEx,
    /// RESCAL (full bilinear; relation rows are `d²` wide).
    Rescal,
    /// HolE (circular correlation).
    HolE,
}

impl ModelKind {
    /// Instantiate the model for base dimension `d`.
    pub fn build(self, dim: usize) -> Box<dyn KgeModel> {
        match self {
            ModelKind::TransEL1 => Box::new(TransE::new(dim, Norm::L1)),
            ModelKind::TransEL2 => Box::new(TransE::new(dim, Norm::L2)),
            ModelKind::TransH => Box::new(TransH::new(dim)),
            ModelKind::TransR => Box::new(TransR::new(dim)),
            ModelKind::TransD => Box::new(TransD::new(dim)),
            ModelKind::DistMult => Box::new(DistMult::new(dim)),
            ModelKind::ComplEx => Box::new(ComplEx::new(dim)),
            ModelKind::Rescal => Box::new(Rescal::new(dim)),
            ModelKind::HolE => Box::new(HolE::new(dim)),
        }
    }

    /// All variants, for exhaustive property tests.
    pub fn all() -> [ModelKind; 9] {
        [
            ModelKind::TransEL1,
            ModelKind::TransEL2,
            ModelKind::TransH,
            ModelKind::TransR,
            ModelKind::TransD,
            ModelKind::DistMult,
            ModelKind::ComplEx,
            ModelKind::Rescal,
            ModelKind::HolE,
        ]
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ModelKind::TransEL1 => "TransE-L1",
            ModelKind::TransEL2 => "TransE-L2",
            ModelKind::TransH => "TransH",
            ModelKind::TransR => "TransR",
            ModelKind::TransD => "TransD",
            ModelKind::DistMult => "DistMult",
            ModelKind::ComplEx => "ComplEx",
            ModelKind::Rescal => "RESCAL",
            ModelKind::HolE => "HolE",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_model_grads;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn every_model_builds_with_consistent_dims() {
        for kind in ModelKind::all() {
            let m = kind.build(8);
            assert_eq!(m.base_dim(), 8, "{kind}");
            assert!(m.entity_dim() >= 8, "{kind}");
            assert!(m.relation_dim() >= 8, "{kind}");
        }
    }

    #[test]
    fn every_model_passes_gradcheck() {
        let mut rng = StdRng::seed_from_u64(99);
        for kind in ModelKind::all() {
            let m = kind.build(6);
            for trial in 0..3 {
                let h: Vec<f32> = (0..m.entity_dim())
                    .map(|_| rng.random_range(-0.8..0.8))
                    .collect();
                let r: Vec<f32> = (0..m.relation_dim())
                    .map(|_| rng.random_range(-0.8..0.8))
                    .collect();
                let t: Vec<f32> = (0..m.entity_dim())
                    .map(|_| rng.random_range(-0.8..0.8))
                    .collect();
                check_model_grads(m.as_ref(), &h, &r, &t)
                    .unwrap_or_else(|e| panic!("{kind} trial {trial}: {e}"));
            }
        }
    }

    #[test]
    fn grads_accumulate_rather_than_overwrite() {
        let m = ModelKind::DistMult.build(4);
        let h = [0.1, 0.2, 0.3, 0.4];
        let r = [0.5, 0.5, 0.5, 0.5];
        let t = [0.4, 0.3, 0.2, 0.1];
        let mut gh = [0.0f32; 4];
        let mut gr = [0.0f32; 4];
        let mut gt = [0.0f32; 4];
        m.grad(&h, &r, &t, 1.0, &mut gh, &mut gr, &mut gt);
        let once = gh;
        m.grad(&h, &r, &t, 1.0, &mut gh, &mut gr, &mut gt);
        for i in 0..4 {
            assert!((gh[i] - 2.0 * once[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(ModelKind::TransEL2.to_string(), "TransE-L2");
        assert_eq!(ModelKind::DistMult.to_string(), "DistMult");
        assert_eq!(ModelKind::Rescal.to_string(), "RESCAL");
    }
}

//! KGE score functions with analytic gradients.
//!
//! Every model implements [`KgeModel`]: a scalar score for a triple's three
//! embedding slices plus the gradient of that score with respect to each
//! slice. Models may use different per-entity and per-relation parameter
//! widths (e.g. TransR stores a `d×d` projection matrix per relation), which
//! is why [`KgeModel::entity_dim`]/[`KgeModel::relation_dim`] exist — the
//! parameter server and caches size their rows from these.
//!
//! Higher scores mean "more plausible"; translational models return negated
//! distances so this convention holds uniformly.

mod complex;
mod distmult;
mod hole;
mod rescal;
mod transd;
mod transe;
mod transh;
mod transr;

pub use complex::ComplEx;
pub use distmult::DistMult;
pub use hole::HolE;
pub use rescal::Rescal;
pub use transd::TransD;
pub use transe::{Norm, TransE};
pub use transh::TransH;
pub use transr::TransR;

use crate::storage::EmbeddingTable;
use serde::{Deserialize, Serialize};

/// A knowledge-graph embedding score function with analytic gradients.
pub trait KgeModel: Send + Sync {
    /// Human-readable model name (e.g. `"TransE-L2"`).
    fn name(&self) -> &'static str;

    /// The base embedding dimension `d` the model was built with.
    fn base_dim(&self) -> usize;

    /// Width of one entity's parameter row.
    fn entity_dim(&self) -> usize {
        self.base_dim()
    }

    /// Width of one relation's parameter row.
    fn relation_dim(&self) -> usize {
        self.base_dim()
    }

    /// Score of triple `(h, r, t)`; higher = more plausible.
    ///
    /// Slice lengths must equal `entity_dim`/`relation_dim` respectively.
    fn score(&self, h: &[f32], r: &[f32], t: &[f32]) -> f32;

    /// Accumulate `dscore * ∂score/∂{h,r,t}` into `gh`, `gr`, `gt`.
    ///
    /// Gradients are *accumulated* (`+=`), so callers can sum over a batch
    /// into shared buffers; zero them first for a fresh gradient.
    #[allow(clippy::too_many_arguments)]
    fn grad(
        &self,
        h: &[f32],
        r: &[f32],
        t: &[f32],
        dscore: f32,
        gh: &mut [f32],
        gr: &mut [f32],
        gt: &mut [f32],
    );

    /// Score a block of candidate tails for a fixed `(h, r)`:
    /// `out[i] = score(h, r, tails.row(ids[i]))`.
    ///
    /// The default implementation loops [`KgeModel::score`]. Models may
    /// override it with a blocked kernel that hoists the per-query work
    /// (e.g. `h + r` for TransE) out of the candidate loop and reuses
    /// `scratch` instead of allocating — but every override MUST stay
    /// **bit-identical** to the default: same float operations on the same
    /// values in the same order per candidate. Offline evaluation pins this
    /// with a differential test; a faster-but-drifting kernel is a bug.
    fn score_tails_block(
        &self,
        h: &[f32],
        r: &[f32],
        tails: &EmbeddingTable,
        ids: &[u32],
        out: &mut [f32],
        scratch: &mut Vec<f32>,
    ) {
        let _ = scratch;
        debug_assert_eq!(ids.len(), out.len());
        for (o, &id) in out.iter_mut().zip(ids) {
            *o = self.score(h, r, tails.row(id as usize));
        }
    }

    /// Score a block of candidate heads for a fixed `(r, t)`:
    /// `out[i] = score(heads.row(ids[i]), r, t)`.
    ///
    /// Same bit-identity contract as [`KgeModel::score_tails_block`]. Note
    /// that the head side usually has less to hoist: TransE's residual is
    /// `(h + r) - t`, so precomputing `r - t` would change the association
    /// order — overrides on this side mostly win by dropping per-candidate
    /// allocation and dynamic dispatch, not by algebra.
    fn score_heads_block(
        &self,
        heads: &EmbeddingTable,
        ids: &[u32],
        r: &[f32],
        t: &[f32],
        out: &mut [f32],
        scratch: &mut Vec<f32>,
    ) {
        let _ = scratch;
        debug_assert_eq!(ids.len(), out.len());
        for (o, &id) in out.iter_mut().zip(ids) {
            *o = self.score(heads.row(id as usize), r, t);
        }
    }
}

/// Serializable model selector, used by training configs and the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// TransE with L1 distance.
    TransEL1,
    /// TransE with L2 distance.
    TransEL2,
    /// TransH (relation-specific hyperplanes).
    TransH,
    /// TransR (relation-specific projection matrices; relation rows are
    /// `d + d²` wide).
    TransR,
    /// TransD (projection vectors; entity and relation rows are `2d` wide).
    TransD,
    /// DistMult (diagonal bilinear).
    DistMult,
    /// ComplEx (complex-valued DistMult; rows are `2d` wide).
    ComplEx,
    /// RESCAL (full bilinear; relation rows are `d²` wide).
    Rescal,
    /// HolE (circular correlation).
    HolE,
}

impl ModelKind {
    /// Instantiate the model for base dimension `d`.
    pub fn build(self, dim: usize) -> Box<dyn KgeModel> {
        match self {
            ModelKind::TransEL1 => Box::new(TransE::new(dim, Norm::L1)),
            ModelKind::TransEL2 => Box::new(TransE::new(dim, Norm::L2)),
            ModelKind::TransH => Box::new(TransH::new(dim)),
            ModelKind::TransR => Box::new(TransR::new(dim)),
            ModelKind::TransD => Box::new(TransD::new(dim)),
            ModelKind::DistMult => Box::new(DistMult::new(dim)),
            ModelKind::ComplEx => Box::new(ComplEx::new(dim)),
            ModelKind::Rescal => Box::new(Rescal::new(dim)),
            ModelKind::HolE => Box::new(HolE::new(dim)),
        }
    }

    /// All variants, for exhaustive property tests.
    pub fn all() -> [ModelKind; 9] {
        [
            ModelKind::TransEL1,
            ModelKind::TransEL2,
            ModelKind::TransH,
            ModelKind::TransR,
            ModelKind::TransD,
            ModelKind::DistMult,
            ModelKind::ComplEx,
            ModelKind::Rescal,
            ModelKind::HolE,
        ]
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ModelKind::TransEL1 => "TransE-L1",
            ModelKind::TransEL2 => "TransE-L2",
            ModelKind::TransH => "TransH",
            ModelKind::TransR => "TransR",
            ModelKind::TransD => "TransD",
            ModelKind::DistMult => "DistMult",
            ModelKind::ComplEx => "ComplEx",
            ModelKind::Rescal => "RESCAL",
            ModelKind::HolE => "HolE",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_model_grads;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn every_model_builds_with_consistent_dims() {
        for kind in ModelKind::all() {
            let m = kind.build(8);
            assert_eq!(m.base_dim(), 8, "{kind}");
            assert!(m.entity_dim() >= 8, "{kind}");
            assert!(m.relation_dim() >= 8, "{kind}");
        }
    }

    #[test]
    fn every_model_passes_gradcheck() {
        let mut rng = StdRng::seed_from_u64(99);
        for kind in ModelKind::all() {
            let m = kind.build(6);
            for trial in 0..3 {
                let h: Vec<f32> = (0..m.entity_dim())
                    .map(|_| rng.random_range(-0.8..0.8))
                    .collect();
                let r: Vec<f32> = (0..m.relation_dim())
                    .map(|_| rng.random_range(-0.8..0.8))
                    .collect();
                let t: Vec<f32> = (0..m.entity_dim())
                    .map(|_| rng.random_range(-0.8..0.8))
                    .collect();
                check_model_grads(m.as_ref(), &h, &r, &t)
                    .unwrap_or_else(|e| panic!("{kind} trial {trial}: {e}"));
            }
        }
    }

    #[test]
    fn grads_accumulate_rather_than_overwrite() {
        let m = ModelKind::DistMult.build(4);
        let h = [0.1, 0.2, 0.3, 0.4];
        let r = [0.5, 0.5, 0.5, 0.5];
        let t = [0.4, 0.3, 0.2, 0.1];
        let mut gh = [0.0f32; 4];
        let mut gr = [0.0f32; 4];
        let mut gt = [0.0f32; 4];
        m.grad(&h, &r, &t, 1.0, &mut gh, &mut gr, &mut gt);
        let once = gh;
        m.grad(&h, &r, &t, 1.0, &mut gh, &mut gr, &mut gt);
        for i in 0..4 {
            assert!((gh[i] - 2.0 * once[i]).abs() < 1e-6);
        }
    }

    /// Every model's block kernels must be bit-identical to the scalar
    /// `score` loop — this is the contract offline evaluation and the
    /// serving top-k path both rely on. Exercises dims that cover the
    /// 8-lane kernels' tails and multi-chunk paths.
    #[test]
    fn block_scoring_is_bit_identical_to_scalar() {
        let mut rng = StdRng::seed_from_u64(1234);
        for kind in ModelKind::all() {
            for dim in [3usize, 8, 13] {
                let m = kind.build(dim);
                let n = 17;
                let mut ents = EmbeddingTable::zeros(n, m.entity_dim());
                for i in 0..n {
                    for v in ents.row_mut(i) {
                        *v = rng.random_range(-0.9..0.9);
                    }
                }
                let mut rel = vec![0.0f32; m.relation_dim()];
                for v in rel.iter_mut() {
                    *v = rng.random_range(-0.9..0.9);
                }
                let ids: Vec<u32> = (0..n as u32).rev().collect();
                let fixed = ents.row(5).to_vec();
                let mut scratch = Vec::new();
                let mut out = vec![0.0f32; ids.len()];

                m.score_tails_block(&fixed, &rel, &ents, &ids, &mut out, &mut scratch);
                for (&id, &got) in ids.iter().zip(&out) {
                    let want = m.score(&fixed, &rel, ents.row(id as usize));
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "{kind} d={dim} tail id={id}: {got} vs {want}"
                    );
                }

                m.score_heads_block(&ents, &ids, &rel, &fixed, &mut out, &mut scratch);
                for (&id, &got) in ids.iter().zip(&out) {
                    let want = m.score(ents.row(id as usize), &rel, &fixed);
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "{kind} d={dim} head id={id}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(ModelKind::TransEL2.to_string(), "TransE-L2");
        assert_eq!(ModelKind::DistMult.to_string(), "DistMult");
        assert_eq!(ModelKind::Rescal.to_string(), "RESCAL");
    }
}

//! The TSV loader must never panic on arbitrary input: every outcome is
//! either parsed triples or a structured error.

use hetkg_kgraph::io::{load_tsv_str, save_tsv, Dictionary};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary text never panics the parser.
    #[test]
    fn loader_is_total(text in ".{0,400}") {
        let mut dict = Dictionary::new();
        let _ = load_tsv_str(&text, &mut dict);
    }

    /// Arbitrary *tab-separated* field content round-trips exactly (fields
    /// may not contain tabs or line breaks — the format's own constraint).
    #[test]
    fn well_formed_lines_round_trip(
        rows in prop::collection::vec(
            ("[^\t\r\n]{1,12}", "[^\t\r\n]{1,8}", "[^\t\r\n]{1,12}"),
            1..30,
        )
    ) {
        let text: String = rows
            .iter()
            .map(|(h, r, t)| format!("{h}\t{r}\t{t}\n"))
            .collect();
        let mut dict = Dictionary::new();
        let triples = load_tsv_str(&text, &mut dict).expect("well-formed input parses");
        prop_assert_eq!(triples.len(), rows.len());

        let mut buf = Vec::new();
        save_tsv(&mut buf, &triples, &dict).unwrap();
        let mut dict2 = Dictionary::new();
        let reparsed = load_tsv_str(&String::from_utf8(buf).unwrap(), &mut dict2).unwrap();
        prop_assert_eq!(reparsed, triples);
    }

    /// Lines with the wrong arity produce BadLine, not garbage triples.
    #[test]
    fn wrong_arity_is_an_error(fields in prop::collection::vec("[a-z]{1,5}", 1..6)) {
        prop_assume!(fields.len() != 3);
        let line = fields.join("\t");
        let mut dict = Dictionary::new();
        prop_assert!(load_tsv_str(&line, &mut dict).is_err());
    }
}

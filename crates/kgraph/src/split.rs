//! Train/valid/test splitting.
//!
//! The paper uses the standard splits for FB15k/WN18 and a 90/5/5 split for
//! Freebase-86m (§VI-A). [`Split::new`] reproduces the 90/5/5 convention on
//! any graph, deterministically from a seed.

use crate::graph::KnowledgeGraph;
use crate::triple::Triple;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A train/valid/test partition of a graph's triples.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training triples (the bulk).
    pub train: Vec<Triple>,
    /// Validation triples.
    pub valid: Vec<Triple>,
    /// Test triples.
    pub test: Vec<Triple>,
}

impl Split {
    /// Randomly split `kg`'s triples: `train_frac` to train, `valid_frac` to
    /// valid, the remainder to test. Deterministic in `seed`.
    ///
    /// # Panics
    /// Panics unless `0 < train_frac`, `0 <= valid_frac`, and
    /// `train_frac + valid_frac <= 1`.
    pub fn new(kg: &KnowledgeGraph, train_frac: f64, valid_frac: f64, seed: u64) -> Self {
        assert!(
            train_frac > 0.0 && valid_frac >= 0.0,
            "fractions must be non-negative"
        );
        assert!(train_frac + valid_frac <= 1.0 + 1e-12, "fractions exceed 1");
        let mut order: Vec<u32> = (0..kg.num_triples() as u32).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let n = order.len();
        let n_train = ((n as f64) * train_frac).round() as usize;
        let n_valid = ((n as f64) * valid_frac).round() as usize;
        let n_train = n_train.min(n);
        let n_valid = n_valid.min(n - n_train);
        let pick = |ids: &[u32]| -> Vec<Triple> {
            ids.iter().map(|&i| kg.triples()[i as usize]).collect()
        };
        Split {
            train: pick(&order[..n_train]),
            valid: pick(&order[n_train..n_train + n_valid]),
            test: pick(&order[n_train + n_valid..]),
        }
    }

    /// The paper's Freebase-86m convention: 90% train / 5% valid / 5% test.
    pub fn ninety_five_five(kg: &KnowledgeGraph, seed: u64) -> Self {
        Self::new(kg, 0.90, 0.05, seed)
    }

    /// Total triples across the three parts.
    pub fn len(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len()
    }

    /// Whether the split holds no triples at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SyntheticKg;

    fn graph() -> KnowledgeGraph {
        SyntheticKg {
            num_entities: 500,
            num_relations: 20,
            num_triples: 4_000,
            ..Default::default()
        }
        .build(77)
    }

    #[test]
    fn split_is_exhaustive_and_disjoint() {
        let g = graph();
        let s = Split::ninety_five_five(&g, 1);
        assert_eq!(s.len(), g.num_triples());
        let mut all: Vec<Triple> = Vec::new();
        all.extend_from_slice(&s.train);
        all.extend_from_slice(&s.valid);
        all.extend_from_slice(&s.test);
        all.sort_unstable();
        let mut orig = g.triples().to_vec();
        orig.sort_unstable();
        assert_eq!(all, orig);
    }

    #[test]
    fn split_proportions_are_close() {
        let g = graph();
        let s = Split::ninety_five_five(&g, 2);
        let n = g.num_triples() as f64;
        assert!((s.train.len() as f64 / n - 0.90).abs() < 0.01);
        assert!((s.valid.len() as f64 / n - 0.05).abs() < 0.01);
        assert!((s.test.len() as f64 / n - 0.05).abs() < 0.01);
    }

    #[test]
    fn split_is_deterministic() {
        let g = graph();
        let a = Split::ninety_five_five(&g, 5);
        let b = Split::ninety_five_five(&g, 5);
        assert_eq!(a.train, b.train);
        assert_eq!(a.valid, b.valid);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn different_seed_different_shuffle() {
        let g = graph();
        let a = Split::ninety_five_five(&g, 5);
        let b = Split::ninety_five_five(&g, 6);
        assert_ne!(a.train, b.train);
    }

    #[test]
    fn zero_valid_fraction_allowed() {
        let g = graph();
        let s = Split::new(&g, 0.8, 0.0, 3);
        assert!(s.valid.is_empty());
        assert!(!s.test.is_empty());
    }

    #[test]
    #[should_panic(expected = "fractions exceed 1")]
    fn overfull_fractions_panic() {
        let g = graph();
        let _ = Split::new(&g, 0.9, 0.2, 3);
    }
}

//! Pattern lookups over a triple set: `(h, r, ?)` and `(?, r, t)`.
//!
//! Filtered link-prediction evaluation and negative-sample validation both
//! need "which entities complete this pattern?" queries; a [`TripleIndex`]
//! answers them from two hash maps built in one pass.

use crate::ids::{EntityId, RelationId};
use crate::triple::Triple;
use std::collections::HashMap;

/// Hash-indexed triple patterns.
#[derive(Debug, Clone, Default)]
pub struct TripleIndex {
    /// `(head, relation) → tails`.
    by_head_rel: HashMap<(EntityId, RelationId), Vec<EntityId>>,
    /// `(relation, tail) → heads`.
    by_rel_tail: HashMap<(RelationId, EntityId), Vec<EntityId>>,
    len: usize,
}

impl TripleIndex {
    /// Build from a triple list.
    pub fn new(triples: &[Triple]) -> Self {
        let mut idx = TripleIndex::default();
        for &t in triples {
            idx.insert(t);
        }
        idx
    }

    /// Add one triple.
    pub fn insert(&mut self, t: Triple) {
        self.by_head_rel
            .entry((t.head, t.relation))
            .or_default()
            .push(t.tail);
        self.by_rel_tail
            .entry((t.relation, t.tail))
            .or_default()
            .push(t.head);
        self.len += 1;
    }

    /// Number of indexed triples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no triples are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All tails `t'` such that `(h, r, t')` is indexed.
    pub fn tails(&self, h: EntityId, r: RelationId) -> &[EntityId] {
        self.by_head_rel
            .get(&(h, r))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All heads `h'` such that `(h', r, t)` is indexed.
    pub fn heads(&self, r: RelationId, t: EntityId) -> &[EntityId] {
        self.by_rel_tail
            .get(&(r, t))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether the exact triple is indexed.
    pub fn contains(&self, t: Triple) -> bool {
        self.tails(t.head, t.relation).contains(&t.tail)
    }

    /// How many true tails compete with `t.tail` for `(t.head, t.relation)`
    /// — the count the *filtered* ranking protocol removes.
    pub fn competing_tails(&self, t: Triple) -> usize {
        self.tails(t.head, t.relation)
            .iter()
            .filter(|&&x| x != t.tail)
            .count()
    }

    /// How many true heads compete with `t.head` for `(t.relation, t.tail)`.
    pub fn competing_heads(&self, t: Triple) -> usize {
        self.heads(t.relation, t.tail)
            .iter()
            .filter(|&&x| x != t.head)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> TripleIndex {
        TripleIndex::new(&[
            Triple::new(0, 0, 1),
            Triple::new(0, 0, 2),
            Triple::new(3, 0, 2),
            Triple::new(0, 1, 2),
        ])
    }

    #[test]
    fn tails_and_heads_answer_patterns() {
        let idx = index();
        assert_eq!(
            idx.tails(EntityId(0), RelationId(0)),
            &[EntityId(1), EntityId(2)]
        );
        assert_eq!(
            idx.heads(RelationId(0), EntityId(2)),
            &[EntityId(0), EntityId(3)]
        );
        assert!(idx.tails(EntityId(9), RelationId(0)).is_empty());
    }

    #[test]
    fn contains_exact_triples_only() {
        let idx = index();
        assert!(idx.contains(Triple::new(0, 0, 1)));
        assert!(!idx.contains(Triple::new(1, 0, 0)));
        assert!(!idx.contains(Triple::new(0, 1, 1)));
    }

    #[test]
    fn competing_counts_exclude_self() {
        let idx = index();
        // (0, r0, 1): the other true tail for (0, r0) is 2 → one competitor.
        assert_eq!(idx.competing_tails(Triple::new(0, 0, 1)), 1);
        // (0, r0, 2): competitor tail 1.
        assert_eq!(idx.competing_tails(Triple::new(0, 0, 2)), 1);
        // (0, r0, 2) heads: competitor 3.
        assert_eq!(idx.competing_heads(Triple::new(0, 0, 2)), 1);
        // relation 1 has a single triple: no competitors.
        assert_eq!(idx.competing_tails(Triple::new(0, 1, 2)), 0);
    }

    #[test]
    fn incremental_insert_matches_bulk() {
        let triples = vec![
            Triple::new(1, 0, 2),
            Triple::new(2, 1, 3),
            Triple::new(1, 0, 3),
        ];
        let bulk = TripleIndex::new(&triples);
        let mut inc = TripleIndex::default();
        for &t in &triples {
            inc.insert(t);
        }
        assert_eq!(inc.len(), bulk.len());
        assert_eq!(
            inc.tails(EntityId(1), RelationId(0)),
            bulk.tails(EntityId(1), RelationId(0))
        );
    }

    #[test]
    fn empty_index() {
        let idx = TripleIndex::default();
        assert!(idx.is_empty());
        assert!(!idx.contains(Triple::new(0, 0, 1)));
    }
}

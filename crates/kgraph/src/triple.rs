//! The `(head, relation, tail)` triple — the atom of a knowledge graph.

use crate::ids::{EntityId, RelationId};
use serde::{Deserialize, Serialize};

/// A fact `(h, r, t)`: head entity, relation, tail entity.
///
/// Triples are `Copy` and 12 bytes, so mini-batches can be passed around
/// by value without allocation concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Triple {
    /// Head (subject) entity.
    pub head: EntityId,
    /// Relation (predicate).
    pub relation: RelationId,
    /// Tail (object) entity.
    pub tail: EntityId,
}

impl Triple {
    /// Construct a triple from raw indices.
    #[inline]
    pub fn new(head: u32, relation: u32, tail: u32) -> Self {
        Self {
            head: EntityId(head),
            relation: RelationId(relation),
            tail: EntityId(tail),
        }
    }

    /// The triple with head replaced (used when corrupting heads for
    /// negative sampling).
    #[inline]
    pub fn with_head(self, head: EntityId) -> Self {
        Self { head, ..self }
    }

    /// The triple with tail replaced (used when corrupting tails for
    /// negative sampling).
    #[inline]
    pub fn with_tail(self, tail: EntityId) -> Self {
        Self { tail, ..self }
    }

    /// The triple with relation replaced.
    #[inline]
    pub fn with_relation(self, relation: RelationId) -> Self {
        Self { relation, ..self }
    }

    /// Whether the triple is a self-loop (head == tail).
    #[inline]
    pub fn is_loop(self) -> bool {
        self.head == self.tail
    }
}

impl std::fmt::Display for Triple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}, {})", self.head, self.relation, self.tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_is_small() {
        // Mini-batches are Vec<Triple>; keep the atom compact.
        assert_eq!(std::mem::size_of::<Triple>(), 12);
    }

    #[test]
    fn corruption_helpers_replace_one_slot() {
        let t = Triple::new(1, 2, 3);
        assert_eq!(t.with_head(EntityId(9)), Triple::new(9, 2, 3));
        assert_eq!(t.with_tail(EntityId(9)), Triple::new(1, 2, 9));
        assert_eq!(t.with_relation(RelationId(9)), Triple::new(1, 9, 3));
        // original untouched (Copy semantics)
        assert_eq!(t, Triple::new(1, 2, 3));
    }

    #[test]
    fn loop_detection() {
        assert!(Triple::new(4, 0, 4).is_loop());
        assert!(!Triple::new(4, 0, 5).is_loop());
    }

    #[test]
    fn display_shows_all_slots() {
        assert_eq!(Triple::new(1, 2, 3).to_string(), "(e1, r2, e3)");
    }
}

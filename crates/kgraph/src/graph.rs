//! The [`KnowledgeGraph`]: a triple store with CSR adjacency and degree
//! information.
//!
//! The adjacency index is built once at construction (CSR over the
//! *undirected* entity graph, which is what the partitioner needs) and the
//! raw triple list is kept for sampling.

use crate::ids::{EntityId, KeySpace, RelationId};
use crate::triple::Triple;

/// An immutable knowledge graph: `n_v` entities, `n_r` relations, and a list
/// of triples, with a CSR adjacency index over entities.
#[derive(Debug, Clone)]
pub struct KnowledgeGraph {
    num_entities: usize,
    num_relations: usize,
    triples: Vec<Triple>,
    /// CSR row offsets: `adj_off[v]..adj_off[v+1]` indexes `adj` for entity v.
    adj_off: Vec<u64>,
    /// CSR column list: neighbouring entity ids (undirected; both endpoints
    /// of every triple see each other).
    adj: Vec<u32>,
}

/// Errors raised when constructing a graph from untrusted input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A triple references an entity id `>= num_entities`.
    EntityOutOfRange { triple_index: usize, entity: u32 },
    /// A triple references a relation id `>= num_relations`.
    RelationOutOfRange { triple_index: usize, relation: u32 },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::EntityOutOfRange {
                triple_index,
                entity,
            } => {
                write!(f, "triple {triple_index}: entity id {entity} out of range")
            }
            GraphError::RelationOutOfRange {
                triple_index,
                relation,
            } => {
                write!(
                    f,
                    "triple {triple_index}: relation id {relation} out of range"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl KnowledgeGraph {
    /// Build a graph, validating that every triple's ids are in range.
    pub fn new(
        num_entities: usize,
        num_relations: usize,
        triples: Vec<Triple>,
    ) -> Result<Self, GraphError> {
        for (i, t) in triples.iter().enumerate() {
            if t.head.index() >= num_entities {
                return Err(GraphError::EntityOutOfRange {
                    triple_index: i,
                    entity: t.head.0,
                });
            }
            if t.tail.index() >= num_entities {
                return Err(GraphError::EntityOutOfRange {
                    triple_index: i,
                    entity: t.tail.0,
                });
            }
            if t.relation.index() >= num_relations {
                return Err(GraphError::RelationOutOfRange {
                    triple_index: i,
                    relation: t.relation.0,
                });
            }
        }
        Ok(Self::new_unchecked(num_entities, num_relations, triples))
    }

    /// Build a graph from triples already known to be in range (e.g. from a
    /// generator). Only range *debug* assertions are performed.
    pub fn new_unchecked(num_entities: usize, num_relations: usize, triples: Vec<Triple>) -> Self {
        // Two-pass CSR construction: count degrees, then fill.
        let mut deg = vec![0u64; num_entities];
        for t in &triples {
            debug_assert!(t.head.index() < num_entities && t.tail.index() < num_entities);
            debug_assert!(t.relation.index() < num_relations);
            deg[t.head.index()] += 1;
            deg[t.tail.index()] += 1;
        }
        let mut adj_off = Vec::with_capacity(num_entities + 1);
        adj_off.push(0u64);
        let mut acc = 0u64;
        for d in &deg {
            acc += d;
            adj_off.push(acc);
        }
        let mut cursor: Vec<u64> = adj_off[..num_entities].to_vec();
        let mut adj = vec![0u32; acc as usize];
        for t in &triples {
            let h = t.head.index();
            let ta = t.tail.index();
            adj[cursor[h] as usize] = t.tail.0;
            cursor[h] += 1;
            adj[cursor[ta] as usize] = t.head.0;
            cursor[ta] += 1;
        }
        Self {
            num_entities,
            num_relations,
            triples,
            adj_off,
            adj,
        }
    }

    /// Number of entities `n_v`.
    #[inline]
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }

    /// Number of relations `n_r`.
    #[inline]
    pub fn num_relations(&self) -> usize {
        self.num_relations
    }

    /// Number of triples (edges).
    #[inline]
    pub fn num_triples(&self) -> usize {
        self.triples.len()
    }

    /// All triples.
    #[inline]
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// The flat parameter-key space for this graph's embeddings.
    #[inline]
    pub fn key_space(&self) -> KeySpace {
        KeySpace::new(self.num_entities, self.num_relations)
    }

    /// Undirected degree of an entity (each incident triple counts once,
    /// self-loops count twice — standard CSR convention).
    #[inline]
    pub fn degree(&self, e: EntityId) -> usize {
        let v = e.index();
        (self.adj_off[v + 1] - self.adj_off[v]) as usize
    }

    /// Neighbouring entities of `e` in the undirected entity graph
    /// (with multiplicity: parallel edges repeat the neighbour).
    #[inline]
    pub fn neighbors(&self, e: EntityId) -> &[u32] {
        let v = e.index();
        &self.adj[self.adj_off[v] as usize..self.adj_off[v + 1] as usize]
    }

    /// Per-relation triple counts (how often each relation labels an edge).
    pub fn relation_frequencies(&self) -> Vec<u64> {
        let mut freq = vec![0u64; self.num_relations];
        for t in &self.triples {
            freq[t.relation.index()] += 1;
        }
        freq
    }

    /// Per-entity degrees as a vector (undirected, as [`Self::degree`]).
    pub fn entity_degrees(&self) -> Vec<u64> {
        (0..self.num_entities)
            .map(|v| self.adj_off[v + 1] - self.adj_off[v])
            .collect()
    }

    /// A sub-view keeping only the listed triples (shares no storage).
    /// Entity/relation id spaces are preserved, so embeddings line up.
    pub fn restrict(&self, triples: Vec<Triple>) -> KnowledgeGraph {
        KnowledgeGraph::new_unchecked(self.num_entities, self.num_relations, triples)
    }

    /// Average entity degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_entities == 0 {
            return 0.0;
        }
        self.adj.len() as f64 / self.num_entities as f64
    }

    /// Relation id with the largest triple count, if any triples exist.
    pub fn most_frequent_relation(&self) -> Option<RelationId> {
        let freq = self.relation_frequencies();
        freq.iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .filter(|(_, c)| **c > 0)
            .map(|(i, _)| RelationId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> KnowledgeGraph {
        // 0 --r0--> 1, 1 --r1--> 2, 0 --r0--> 2
        KnowledgeGraph::new(
            3,
            2,
            vec![
                Triple::new(0, 0, 1),
                Triple::new(1, 1, 2),
                Triple::new(0, 0, 2),
            ],
        )
        .unwrap()
    }

    #[test]
    fn counts() {
        let g = toy();
        assert_eq!(g.num_entities(), 3);
        assert_eq!(g.num_relations(), 2);
        assert_eq!(g.num_triples(), 3);
    }

    #[test]
    fn degrees_are_undirected() {
        let g = toy();
        assert_eq!(g.degree(EntityId(0)), 2);
        assert_eq!(g.degree(EntityId(1)), 2);
        assert_eq!(g.degree(EntityId(2)), 2);
        assert_eq!(g.entity_degrees(), vec![2, 2, 2]);
    }

    #[test]
    fn neighbors_contain_both_directions() {
        let g = toy();
        let mut n0: Vec<u32> = g.neighbors(EntityId(0)).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2]);
        let mut n2: Vec<u32> = g.neighbors(EntityId(2)).to_vec();
        n2.sort_unstable();
        assert_eq!(n2, vec![0, 1]);
    }

    #[test]
    fn self_loop_counts_twice_in_degree() {
        let g = KnowledgeGraph::new(1, 1, vec![Triple::new(0, 0, 0)]).unwrap();
        assert_eq!(g.degree(EntityId(0)), 2);
        assert_eq!(g.neighbors(EntityId(0)), &[0, 0]);
    }

    #[test]
    fn relation_frequencies_count_labels() {
        let g = toy();
        assert_eq!(g.relation_frequencies(), vec![2, 1]);
        assert_eq!(g.most_frequent_relation(), Some(RelationId(0)));
    }

    #[test]
    fn out_of_range_entity_rejected() {
        let err = KnowledgeGraph::new(2, 1, vec![Triple::new(0, 0, 5)]).unwrap_err();
        assert_eq!(
            err,
            GraphError::EntityOutOfRange {
                triple_index: 0,
                entity: 5
            }
        );
    }

    #[test]
    fn out_of_range_relation_rejected() {
        let err = KnowledgeGraph::new(2, 1, vec![Triple::new(0, 3, 1)]).unwrap_err();
        assert_eq!(
            err,
            GraphError::RelationOutOfRange {
                triple_index: 0,
                relation: 3
            }
        );
    }

    #[test]
    fn restrict_keeps_id_spaces() {
        let g = toy();
        let sub = g.restrict(vec![Triple::new(0, 0, 1)]);
        assert_eq!(sub.num_entities(), 3);
        assert_eq!(sub.num_relations(), 2);
        assert_eq!(sub.num_triples(), 1);
        assert_eq!(sub.degree(EntityId(2)), 0);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = KnowledgeGraph::new(0, 0, vec![]).unwrap();
        assert_eq!(g.num_triples(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.most_frequent_relation(), None);
    }

    #[test]
    fn key_space_matches_counts() {
        let g = toy();
        let ks = g.key_space();
        assert_eq!(ks.num_entities(), 3);
        assert_eq!(ks.num_relations(), 2);
    }
}

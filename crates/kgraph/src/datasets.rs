//! Presets matching the paper's three evaluation datasets (Table II).
//!
//! | Dataset      | entities   | triples     | relations |
//! |--------------|-----------:|------------:|----------:|
//! | FB15k        | 14,951     | 592,213     | 1,345     |
//! | WN18         | 40,943     | 151,442     | 18        |
//! | Freebase-86m | 86,054,151 | 338,586,276 | 14,824    |
//!
//! `fb15k_like()` / `wn18_like()` return full-size configurations;
//! `freebase86m_like()` is pre-scaled to 1/86th (≈1M entities) because the
//! full parameter table (86M × d floats) does not fit on a single machine —
//! see DESIGN.md. Call [`SyntheticKg::scale`] to shrink further for tests.
//!
//! The Zipf exponents are chosen so the generated access-frequency skew
//! reproduces §IV-B's measurement on FB15k: the top 1% of entities /
//! relations account for ≈6% / ≈36% of embedding usage.

use crate::generator::SyntheticKg;

/// Statistics of the published datasets, for documentation and scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetStats {
    /// Published entity count.
    pub entities: usize,
    /// Published triple count.
    pub triples: usize,
    /// Published relation count.
    pub relations: usize,
}

/// Published FB15k statistics.
pub const FB15K: DatasetStats = DatasetStats {
    entities: 14_951,
    triples: 592_213,
    relations: 1_345,
};
/// Published WN18 statistics.
pub const WN18: DatasetStats = DatasetStats {
    entities: 40_943,
    triples: 151_442,
    relations: 18,
};
/// Published Freebase-86m statistics.
pub const FREEBASE_86M: DatasetStats = DatasetStats {
    entities: 86_054_151,
    triples: 338_586_276,
    relations: 14_824,
};

/// FB15k-shaped synthetic generator (full published size).
///
/// Moderate entity skew, strong relation skew (1,345 relations over 592k
/// triples, heavily concentrated).
pub fn fb15k_like() -> SyntheticKg {
    SyntheticKg {
        num_entities: FB15K.entities,
        num_relations: FB15K.relations,
        num_triples: FB15K.triples,
        entity_alpha: 0.85,
        relation_alpha: 1.1,
        forbid_loops: true,
        dedup: true,
    }
}

/// WN18-shaped synthetic generator (full published size).
///
/// Only 18 relations: each relation is extremely hot, which is why the paper
/// finds caching especially effective on WN18.
pub fn wn18_like() -> SyntheticKg {
    SyntheticKg {
        num_entities: WN18.entities,
        num_relations: WN18.relations,
        num_triples: WN18.triples,
        entity_alpha: 0.75,
        relation_alpha: 0.9,
        forbid_loops: true,
        dedup: true,
    }
}

/// Freebase-86m-shaped synthetic generator, pre-scaled to ≈1M entities /
/// ≈3.9M triples (1/86th of published size; same skew).
pub fn freebase86m_like() -> SyntheticKg {
    SyntheticKg {
        num_entities: FREEBASE_86M.entities,
        num_relations: FREEBASE_86M.relations,
        num_triples: FREEBASE_86M.triples,
        entity_alpha: 1.0,
        relation_alpha: 1.2,
        forbid_loops: true,
        // Dedup over 338M (even scaled, millions of) triples costs memory but
        // stays affordable at the default 1/86 scale.
        dedup: true,
    }
    .scale(1.0 / 86.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_published_shapes() {
        let fb = fb15k_like();
        assert_eq!(fb.num_entities, 14_951);
        assert_eq!(fb.num_relations, 1_345);
        let wn = wn18_like();
        assert_eq!(wn.num_relations, 18);
        let fbm = freebase86m_like();
        // pre-scaled to ~1/86
        assert!(fbm.num_entities > 900_000 && fbm.num_entities < 1_100_000);
        assert!(fbm.num_triples > 3_500_000 && fbm.num_triples < 4_500_000);
    }

    #[test]
    fn small_fb15k_builds() {
        let g = fb15k_like().scale(0.01).build(1);
        assert!(g.num_triples() > 1_000);
        assert!(g.num_entities() > 100);
    }

    #[test]
    fn fb15k_frequency_concentration_resembles_paper() {
        // §IV-B: on FB15k the top 1% of relations occupy ~36% of usage and
        // the top 1% of entities ~6%. Check the synthetic shape is in the
        // right ballpark (generous bands: this is a shape test).
        let g = fb15k_like().scale(0.1).build(9);
        let mut rel = g.relation_frequencies();
        rel.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct = (rel.len() / 100).max(1);
        let rel_share: u64 = rel[..top1pct].iter().sum();
        let rel_frac = rel_share as f64 / g.num_triples() as f64;
        assert!(
            rel_frac > 0.15 && rel_frac < 0.75,
            "top-1% relation share {rel_frac} out of band"
        );

        let mut deg = g.entity_degrees();
        deg.sort_unstable_by(|a, b| b.cmp(a));
        let topent = (deg.len() / 100).max(1);
        let ent_share: u64 = deg[..topent].iter().sum();
        let total: u64 = deg.iter().sum();
        let ent_frac = ent_share as f64 / total as f64;
        assert!(
            ent_frac > 0.02 && ent_frac < 0.4,
            "top-1% entity share {ent_frac} out of band"
        );
        // Relations must be hotter than entities (node heterogeneity).
        assert!(rel_frac > ent_frac);
    }
}

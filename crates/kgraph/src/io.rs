//! TSV loading/saving in the format used by FB15k/WN18 distributions.
//!
//! Benchmark files are lines of `head<TAB>relation<TAB>tail` where the three
//! fields are arbitrary strings. [`Dictionary`] interns strings to dense ids;
//! [`load_tsv`]/[`load_tsv_str`] parse one file, [`load_benchmark`] parses
//! the conventional `train.txt`/`valid.txt`/`test.txt` trio sharing one
//! dictionary (ranking evaluation needs consistent ids across splits).

use crate::graph::KnowledgeGraph;
use crate::triple::Triple;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// Interns entity and relation names to dense `u32` ids.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    entity_ids: HashMap<String, u32>,
    entity_names: Vec<String>,
    relation_ids: HashMap<String, u32>,
    relation_names: Vec<String>,
}

impl Dictionary {
    /// Empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Id for an entity name, interning it if unseen.
    pub fn entity(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.entity_ids.get(name) {
            return id;
        }
        let id = self.entity_names.len() as u32;
        self.entity_ids.insert(name.to_owned(), id);
        self.entity_names.push(name.to_owned());
        id
    }

    /// Id for a relation name, interning it if unseen.
    pub fn relation(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.relation_ids.get(name) {
            return id;
        }
        let id = self.relation_names.len() as u32;
        self.relation_ids.insert(name.to_owned(), id);
        self.relation_names.push(name.to_owned());
        id
    }

    /// Look up an entity id without interning.
    pub fn entity_id(&self, name: &str) -> Option<u32> {
        self.entity_ids.get(name).copied()
    }

    /// Look up a relation id without interning.
    pub fn relation_id(&self, name: &str) -> Option<u32> {
        self.relation_ids.get(name).copied()
    }

    /// Name of an entity id.
    pub fn entity_name(&self, id: u32) -> Option<&str> {
        self.entity_names.get(id as usize).map(String::as_str)
    }

    /// Name of a relation id.
    pub fn relation_name(&self, id: u32) -> Option<&str> {
        self.relation_names.get(id as usize).map(String::as_str)
    }

    /// Number of interned entities.
    pub fn num_entities(&self) -> usize {
        self.entity_names.len()
    }

    /// Number of interned relations.
    pub fn num_relations(&self) -> usize {
        self.relation_names.len()
    }
}

/// Errors from TSV parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A line did not have exactly three tab-separated fields.
    BadLine { line_number: usize, content: String },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::BadLine {
                line_number,
                content,
            } => {
                write!(
                    f,
                    "line {line_number}: expected 3 tab-separated fields, got {content:?}"
                )
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parse triples from TSV text, interning names through `dict`.
pub fn load_tsv_str(text: &str, dict: &mut Dictionary) -> Result<Vec<Triple>, IoError> {
    let mut triples = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split('\t');
        let (h, r, t) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(h), Some(r), Some(t), None) => (h, r, t),
            _ => {
                return Err(IoError::BadLine {
                    line_number: i + 1,
                    content: line.to_owned(),
                })
            }
        };
        triples.push(Triple::new(
            dict.entity(h),
            dict.relation(r),
            dict.entity(t),
        ));
    }
    Ok(triples)
}

/// Parse triples from a TSV file, interning names through `dict`.
pub fn load_tsv(path: &Path, dict: &mut Dictionary) -> Result<Vec<Triple>, IoError> {
    let file = std::fs::File::open(path)?;
    let mut reader = BufReader::new(file);
    // Stream line-by-line with a workhorse String to avoid per-line allocs.
    let mut text = String::new();
    let mut triples = Vec::new();
    let mut line_number = 0usize;
    loop {
        text.clear();
        if reader.read_line(&mut text)? == 0 {
            break;
        }
        line_number += 1;
        let line = text.trim_end_matches(['\n', '\r']);
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split('\t');
        let (h, r, t) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(h), Some(r), Some(t), None) => (h, r, t),
            _ => {
                return Err(IoError::BadLine {
                    line_number,
                    content: line.to_owned(),
                })
            }
        };
        triples.push(Triple::new(
            dict.entity(h),
            dict.relation(r),
            dict.entity(t),
        ));
    }
    Ok(triples)
}

/// A benchmark dataset loaded from `train/valid/test` files sharing one id
/// space.
#[derive(Debug)]
pub struct Benchmark {
    /// The full graph (union of the three splits' triples, shared id space).
    pub graph: KnowledgeGraph,
    /// Training triples.
    pub train: Vec<Triple>,
    /// Validation triples.
    pub valid: Vec<Triple>,
    /// Test triples.
    pub test: Vec<Triple>,
    /// Name dictionary.
    pub dict: Dictionary,
}

/// Load `dir/train.txt`, `dir/valid.txt`, `dir/test.txt` (the FB15k/WN18
/// distribution convention) into a single id space.
pub fn load_benchmark(dir: &Path) -> Result<Benchmark, IoError> {
    let mut dict = Dictionary::new();
    let train = load_tsv(&dir.join("train.txt"), &mut dict)?;
    let valid = load_tsv(&dir.join("valid.txt"), &mut dict)?;
    let test = load_tsv(&dir.join("test.txt"), &mut dict)?;
    let mut all = Vec::with_capacity(train.len() + valid.len() + test.len());
    all.extend_from_slice(&train);
    all.extend_from_slice(&valid);
    all.extend_from_slice(&test);
    let graph = KnowledgeGraph::new_unchecked(dict.num_entities(), dict.num_relations(), all);
    Ok(Benchmark {
        graph,
        train,
        valid,
        test,
        dict,
    })
}

/// Write triples as TSV using the dictionary's names.
///
/// Triples whose ids are missing from the dictionary are written as raw
/// numbers (round-trips through [`load_tsv`] still work).
pub fn save_tsv<W: Write>(mut w: W, triples: &[Triple], dict: &Dictionary) -> std::io::Result<()> {
    for t in triples {
        match (
            dict.entity_name(t.head.0),
            dict.relation_name(t.relation.0),
            dict.entity_name(t.tail.0),
        ) {
            (Some(h), Some(r), Some(ta)) => writeln!(w, "{h}\t{r}\t{ta}")?,
            _ => writeln!(w, "{}\t{}\t{}", t.head.0, t.relation.0, t.tail.0)?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_interns_stably() {
        let mut d = Dictionary::new();
        assert_eq!(d.entity("/m/alice"), 0);
        assert_eq!(d.entity("/m/bob"), 1);
        assert_eq!(d.entity("/m/alice"), 0);
        assert_eq!(d.relation("knows"), 0);
        assert_eq!(d.num_entities(), 2);
        assert_eq!(d.num_relations(), 1);
        assert_eq!(d.entity_name(1), Some("/m/bob"));
        assert_eq!(d.entity_id("/m/bob"), Some(1));
        assert_eq!(d.entity_id("/m/carol"), None);
    }

    #[test]
    fn parse_simple_tsv() {
        let mut d = Dictionary::new();
        let triples = load_tsv_str("a\tlikes\tb\nb\tlikes\tc\n", &mut d).unwrap();
        assert_eq!(triples.len(), 2);
        assert_eq!(triples[0], Triple::new(0, 0, 1));
        assert_eq!(triples[1], Triple::new(1, 0, 2));
    }

    #[test]
    fn blank_lines_and_crlf_tolerated() {
        let mut d = Dictionary::new();
        let triples = load_tsv_str("a\tr\tb\r\n\n\nb\tr\ta\r\n", &mut d).unwrap();
        assert_eq!(triples.len(), 2);
    }

    #[test]
    fn bad_line_is_reported_with_number() {
        let mut d = Dictionary::new();
        let err = load_tsv_str("a\tr\tb\noops\n", &mut d).unwrap_err();
        match err {
            IoError::BadLine {
                line_number,
                content,
            } => {
                assert_eq!(line_number, 2);
                assert_eq!(content, "oops");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn four_fields_is_an_error() {
        let mut d = Dictionary::new();
        assert!(load_tsv_str("a\tr\tb\tc\n", &mut d).is_err());
    }

    #[test]
    fn save_load_round_trip() {
        let mut d = Dictionary::new();
        let triples = load_tsv_str("alice\tknows\tbob\nbob\tknows\tcarol\n", &mut d).unwrap();
        let mut buf = Vec::new();
        save_tsv(&mut buf, &triples, &d).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut d2 = Dictionary::new();
        let reparsed = load_tsv_str(&text, &mut d2).unwrap();
        assert_eq!(reparsed, triples);
        assert_eq!(d2.num_entities(), d.num_entities());
    }

    #[test]
    fn file_round_trip_through_benchmark_layout() {
        let dir = std::env::temp_dir().join(format!("hetkg-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("train.txt"), "a\tr\tb\nb\tr\tc\n").unwrap();
        std::fs::write(dir.join("valid.txt"), "a\tr\tc\n").unwrap();
        std::fs::write(dir.join("test.txt"), "c\tr\ta\n").unwrap();
        let bench = load_benchmark(&dir).unwrap();
        assert_eq!(bench.train.len(), 2);
        assert_eq!(bench.valid.len(), 1);
        assert_eq!(bench.test.len(), 1);
        assert_eq!(bench.graph.num_triples(), 4);
        assert_eq!(bench.graph.num_entities(), 3);
        assert_eq!(bench.graph.num_relations(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Knowledge-graph data model and workload substrate for HET-KG.
//!
//! This crate provides everything the training system needs to know about the
//! *data*: identifier types, triples, an adjacency-indexed [`KnowledgeGraph`],
//! train/valid/test splits, TSV loaders for standard benchmark files
//! (FB15k/WN18-format), synthetic generators that reproduce the skewed
//! access-frequency distributions the paper's cache exploits, and frequency
//! statistics used both for the Fig. 2 micro-benchmark and by the
//! hot-embedding filter.
//!
//! # Quick example
//!
//! ```
//! use hetkg_kgraph::{datasets, split::Split};
//!
//! // A small FB15k-like synthetic graph (same shape, fewer triples).
//! let kg = datasets::fb15k_like().scale(0.01).build(42);
//! assert!(kg.num_entities() > 0);
//! let split = Split::new(&kg, 0.9, 0.05, 42);
//! assert!(split.train.len() > split.valid.len());
//! ```

pub mod datasets;
pub mod generator;
pub mod graph;
pub mod ids;
pub mod index;
pub mod io;
pub mod split;
pub mod stats;
pub mod triple;

pub use graph::KnowledgeGraph;
pub use ids::{EntityId, KeySpace, ParamKey, RelationId};
pub use triple::Triple;

//! Access-frequency statistics — the paper's Fig. 2 micro-benchmark.
//!
//! The motivation for HET-KG is that embedding accesses during training are
//! heavily skewed: a few "hot" entities/relations dominate, and relations
//! are hotter than entities. [`AccessCounter`] tallies accesses over a
//! workload (each triple touches its head, relation, and tail; negative
//! samples touch the corrupting entities too), and the summary functions
//! compute the top-share numbers quoted in §IV-B.

use crate::ids::{KeySpace, ParamKey};
use crate::triple::Triple;

/// Tallies how many times each embedding (entity or relation) is accessed.
#[derive(Debug, Clone)]
pub struct AccessCounter {
    key_space: KeySpace,
    counts: Vec<u64>,
}

impl AccessCounter {
    /// Fresh counter for a graph's key space.
    pub fn new(key_space: KeySpace) -> Self {
        Self {
            key_space,
            counts: vec![0; key_space.len()],
        }
    }

    /// The key space being counted.
    pub fn key_space(&self) -> KeySpace {
        self.key_space
    }

    /// Record one access of a key.
    #[inline]
    pub fn record(&mut self, key: ParamKey) {
        self.counts[key.index()] += 1;
    }

    /// Record a positive triple: head, relation, and tail each accessed once.
    #[inline]
    pub fn record_triple(&mut self, t: Triple) {
        self.counts[self.key_space.entity_key(t.head).index()] += 1;
        self.counts[self.key_space.relation_key(t.relation).index()] += 1;
        self.counts[self.key_space.entity_key(t.tail).index()] += 1;
    }

    /// Record a batch of triples.
    pub fn record_batch(&mut self, triples: &[Triple]) {
        for &t in triples {
            self.record_triple(t);
        }
    }

    /// Raw count for a key.
    #[inline]
    pub fn count(&self, key: ParamKey) -> u64 {
        self.counts[key.index()]
    }

    /// All counts, indexed by `ParamKey`.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total accesses recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total accesses to entity embeddings.
    pub fn entity_total(&self) -> u64 {
        self.counts[..self.key_space.num_entities()].iter().sum()
    }

    /// Total accesses to relation embeddings.
    pub fn relation_total(&self) -> u64 {
        self.counts[self.key_space.num_entities()..].iter().sum()
    }

    /// Keys sorted by descending access count (ties broken by key order, so
    /// the result is deterministic).
    pub fn ranked_keys(&self) -> Vec<ParamKey> {
        let mut keys: Vec<u32> = (0..self.counts.len() as u32).collect();
        keys.sort_by(|&a, &b| {
            self.counts[b as usize]
                .cmp(&self.counts[a as usize])
                .then(a.cmp(&b))
        });
        keys.into_iter().map(|k| ParamKey(k as u64)).collect()
    }

    /// Fraction of *entity* accesses captured by the hottest
    /// `top_frac` (e.g. 0.01 = top 1%) of entities.
    pub fn entity_top_share(&self, top_frac: f64) -> f64 {
        top_share(&self.counts[..self.key_space.num_entities()], top_frac)
    }

    /// Fraction of *relation* accesses captured by the hottest `top_frac` of
    /// relations.
    pub fn relation_top_share(&self, top_frac: f64) -> f64 {
        top_share(&self.counts[self.key_space.num_entities()..], top_frac)
    }

    /// Mean accesses per relation divided by mean accesses per entity — the
    /// "node heterogeneity" factor. Values ≫ 1 mean relations are much
    /// hotter, as Fig. 2 observes.
    pub fn heterogeneity_factor(&self) -> f64 {
        let ne = self.key_space.num_entities().max(1) as f64;
        let nr = self.key_space.num_relations().max(1) as f64;
        let me = self.entity_total() as f64 / ne;
        let mr = self.relation_total() as f64 / nr;
        if me == 0.0 {
            f64::INFINITY
        } else {
            mr / me
        }
    }

    /// The Fig. 2 export: per-key access counts sorted descending, separately
    /// for entities and relations (rank → frequency curves).
    pub fn frequency_curves(&self) -> FrequencyCurves {
        let mut entities: Vec<u64> = self.counts[..self.key_space.num_entities()].to_vec();
        entities.sort_unstable_by(|a, b| b.cmp(a));
        let mut relations: Vec<u64> = self.counts[self.key_space.num_entities()..].to_vec();
        relations.sort_unstable_by(|a, b| b.cmp(a));
        FrequencyCurves {
            entities,
            relations,
        }
    }
}

/// Rank-ordered access-frequency curves (Fig. 2's two series).
#[derive(Debug, Clone)]
pub struct FrequencyCurves {
    /// Entity access counts, descending.
    pub entities: Vec<u64>,
    /// Relation access counts, descending.
    pub relations: Vec<u64>,
}

/// Share of total mass held by the largest `top_frac` fraction of values.
fn top_share(values: &[u64], top_frac: f64) -> f64 {
    assert!((0.0..=1.0).contains(&top_frac), "top_frac must be in [0,1]");
    if values.is_empty() {
        return 0.0;
    }
    let total: u64 = values.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let k = ((values.len() as f64 * top_frac).ceil() as usize).clamp(1, values.len());
    let mut sorted = values.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let top: u64 = sorted[..k].iter().sum();
    top as f64 / total as f64
}

/// Gini coefficient of a count vector — a single-number skew summary used in
/// experiment reports (0 = uniform, →1 = fully concentrated).
pub fn gini(values: &[u64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<u64> = values.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let total: u64 = sorted.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut weighted = 0.0f64;
    for (i, &v) in sorted.iter().enumerate() {
        weighted += (i as f64 + 1.0) * v as f64;
    }
    (2.0 * weighted) / (n * total as f64) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SyntheticKg;

    #[test]
    fn record_triple_touches_three_keys() {
        let ks = KeySpace::new(4, 2);
        let mut c = AccessCounter::new(ks);
        c.record_triple(Triple::new(0, 1, 3));
        assert_eq!(c.total(), 3);
        assert_eq!(c.count(ParamKey(0)), 1); // head
        assert_eq!(c.count(ParamKey(3)), 1); // tail
        assert_eq!(c.count(ParamKey(5)), 1); // relation 1 at offset 4
        assert_eq!(c.entity_total(), 2);
        assert_eq!(c.relation_total(), 1);
    }

    #[test]
    fn ranked_keys_descending_deterministic() {
        let ks = KeySpace::new(3, 0);
        let mut c = AccessCounter::new(ks);
        c.record(ParamKey(1));
        c.record(ParamKey(1));
        c.record(ParamKey(2));
        let ranked = c.ranked_keys();
        assert_eq!(ranked, vec![ParamKey(1), ParamKey(2), ParamKey(0)]);
    }

    #[test]
    fn top_share_extremes() {
        assert_eq!(top_share(&[10, 0, 0, 0], 0.25), 1.0);
        assert!((top_share(&[1, 1, 1, 1], 0.25) - 0.25).abs() < 1e-12);
        assert_eq!(top_share(&[], 0.5), 0.0);
        assert_eq!(top_share(&[0, 0], 0.5), 0.0);
    }

    #[test]
    fn gini_bounds() {
        assert_eq!(gini(&[]), 0.0);
        assert!(gini(&[5, 5, 5, 5]).abs() < 1e-12);
        // One hot value among many zeros approaches 1 - 1/n.
        let g = gini(&[100, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert!(g > 0.85, "gini {g}");
    }

    #[test]
    fn synthetic_workload_shows_relation_heterogeneity() {
        let g = SyntheticKg {
            num_entities: 2_000,
            num_relations: 40,
            num_triples: 20_000,
            ..Default::default()
        }
        .build(4);
        let mut c = AccessCounter::new(g.key_space());
        c.record_batch(g.triples());
        // Far fewer relations than entities, one relation access per triple:
        // heterogeneity must be large.
        assert!(c.heterogeneity_factor() > 5.0);
        // And the curves are skewed.
        let curves = c.frequency_curves();
        assert!(curves.relations[0] > curves.relations[curves.relations.len() - 1]);
        assert!(c.relation_top_share(0.1) > 0.2);
    }

    #[test]
    fn frequency_curves_are_sorted() {
        let g = SyntheticKg::default().build(9);
        let mut c = AccessCounter::new(g.key_space());
        c.record_batch(g.triples());
        let curves = c.frequency_curves();
        assert!(curves.entities.windows(2).all(|w| w[0] >= w[1]));
        assert!(curves.relations.windows(2).all(|w| w[0] >= w[1]));
    }
}

//! Synthetic knowledge-graph generation with controllable skew.
//!
//! The paper's cache exploits the Zipf-like access-frequency distribution of
//! real KGs (Fig. 2): a few entities/relations account for most embedding
//! accesses. The real benchmark files (FB15k, WN18, Freebase-86m) may not be
//! present, so [`SyntheticKg`] generates graphs whose *frequency shape*
//! matches: entity endpoints and relation labels are drawn from Zipf
//! distributions with configurable exponents.

use crate::graph::KnowledgeGraph;
use crate::triple::Triple;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A discrete Zipf(α) sampler over `0..n` using an inverse-CDF table.
///
/// Weight of rank `i` is `(i+1)^-alpha`; ids are sampled with a binary
/// search over the cumulative table, O(log n) per draw.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `0..n` with exponent `alpha >= 0`.
    ///
    /// `alpha = 0` degenerates to the uniform distribution.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha` is negative/non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs a non-empty support");
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "alpha must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += ((i + 1) as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Defend against rounding: the last cumulative value must be 1.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Self { cdf }
    }

    /// Support size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw one id.
    pub fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // partition_point: first index whose cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of id `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

/// Configuration for a synthetic skewed knowledge graph.
///
/// The generator draws heads and tails from a Zipf over entities (after a
/// seeded shuffle of ranks, so "hot" ids are scattered across the id space
/// as in real data) and relations from a Zipf over relations.
#[derive(Debug, Clone)]
pub struct SyntheticKg {
    /// Number of entities `n_v`.
    pub num_entities: usize,
    /// Number of relations `n_r`.
    pub num_relations: usize,
    /// Number of triples to generate.
    pub num_triples: usize,
    /// Zipf exponent for entity endpoints (≈1.0 matches FB15k-like skew).
    pub entity_alpha: f64,
    /// Zipf exponent for relation labels (relations are usually *more*
    /// skewed than entities; Fig. 2's observation).
    pub relation_alpha: f64,
    /// Reject self-loops (h == t). Real KGE benchmarks contain none.
    pub forbid_loops: bool,
    /// Deduplicate triples. Costs memory; benchmark-scale graphs keep it on.
    pub dedup: bool,
}

impl Default for SyntheticKg {
    fn default() -> Self {
        Self {
            num_entities: 1_000,
            num_relations: 50,
            num_triples: 10_000,
            entity_alpha: 1.0,
            relation_alpha: 1.2,
            forbid_loops: true,
            dedup: true,
        }
    }
}

impl SyntheticKg {
    /// Scale entity/triple counts by a factor, keeping the shape parameters.
    ///
    /// Useful for running the paper's workloads at laptop scale: the skew
    /// (what the cache exploits) is preserved, only the size shrinks.
    ///
    /// Relations scale by `sqrt(factor)` — slower than entities. This is the
    /// compromise that keeps both halves of the paper's node-heterogeneity
    /// story at small scale: the relation vocabulary stays large enough that
    /// a cache cannot trivially hold it (Fig. 8c, Table VI), while relations
    /// remain *hotter per key* than entities (Fig. 2 — per-key heat scales
    /// like `n_e / n_r`, so shrinking relations fully with the triples would
    /// be needed to preserve it exactly, and keeping them all would invert
    /// it).
    pub fn scale(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        self.num_entities = ((self.num_entities as f64 * factor).round() as usize).max(4);
        self.num_triples = ((self.num_triples as f64 * factor).round() as usize).max(4);
        let scaled = ((self.num_relations as f64 * factor.min(1.0).sqrt()).round() as usize).max(2);
        // Never grow the vocabulary: a 1-relation graph stays 1-relation.
        self.num_relations = scaled.min(self.num_relations.max(1));
        self
    }

    /// Generate the graph deterministically from `seed`.
    pub fn build(&self, seed: u64) -> KnowledgeGraph {
        assert!(self.num_entities >= 2, "need at least two entities");
        assert!(self.num_relations >= 1, "need at least one relation");
        let mut rng = StdRng::seed_from_u64(seed);

        // Scatter hotness over the id space: rank -> id permutation.
        let mut entity_perm: Vec<u32> = (0..self.num_entities as u32).collect();
        shuffle(&mut entity_perm, &mut rng);
        let mut relation_perm: Vec<u32> = (0..self.num_relations as u32).collect();
        shuffle(&mut relation_perm, &mut rng);

        let ent = ZipfSampler::new(self.num_entities, self.entity_alpha);
        let rel = ZipfSampler::new(self.num_relations, self.relation_alpha);

        let mut triples = Vec::with_capacity(self.num_triples);
        let mut seen = if self.dedup {
            Some(std::collections::HashSet::with_capacity(
                self.num_triples * 2,
            ))
        } else {
            None
        };
        // Bounded retries guard against tiny/saturated configurations where
        // dedup could otherwise spin forever.
        let max_attempts = self.num_triples.saturating_mul(20).max(1024);
        let mut attempts = 0usize;
        while triples.len() < self.num_triples && attempts < max_attempts {
            attempts += 1;
            let h = entity_perm[ent.sample(&mut rng)];
            let t = entity_perm[ent.sample(&mut rng)];
            if self.forbid_loops && h == t {
                continue;
            }
            let r = relation_perm[rel.sample(&mut rng)];
            let triple = Triple::new(h, r, t);
            if let Some(seen) = seen.as_mut() {
                if !seen.insert(triple) {
                    continue;
                }
            }
            triples.push(triple);
        }
        KnowledgeGraph::new_unchecked(self.num_entities, self.num_relations, triples)
    }
}

/// Fisher–Yates shuffle (avoids depending on rand's `SliceRandom` feature
/// surface; deterministic under `StdRng`).
fn shuffle<T, R: RngExt + ?Sized>(xs: &mut [T], rng: &mut R) {
    for i in (1..xs.len()).rev() {
        let j = rng.random_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = ZipfSampler::new(100, 1.1);
        let total: f64 = (0..100).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9, "pmf total {total}");
    }

    #[test]
    fn zipf_is_monotone_decreasing() {
        let z = ZipfSampler::new(50, 0.8);
        for i in 1..50 {
            assert!(z.pmf(i) <= z.pmf(i - 1) + 1e-12);
        }
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for i in 0..10 {
            assert!((z.pmf(i) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn zipf_empirical_skew() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u64; 1000];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Top-10 ranks should dominate: with alpha=1 over 1000 items the top
        // 1% carries ~39% of mass.
        let top10: u64 = counts[..10].iter().sum();
        assert!(top10 > 15_000, "top-10 mass {top10} too small for Zipf(1)");
    }

    #[test]
    fn generator_is_deterministic() {
        let cfg = SyntheticKg {
            num_entities: 200,
            num_relations: 10,
            num_triples: 500,
            ..Default::default()
        };
        let a = cfg.build(42);
        let b = cfg.build(42);
        assert_eq!(a.triples(), b.triples());
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SyntheticKg {
            num_entities: 200,
            num_relations: 10,
            num_triples: 500,
            ..Default::default()
        };
        let a = cfg.build(1);
        let b = cfg.build(2);
        assert_ne!(a.triples(), b.triples());
    }

    #[test]
    fn generator_respects_counts_and_constraints() {
        let cfg = SyntheticKg {
            num_entities: 300,
            num_relations: 12,
            num_triples: 2_000,
            ..Default::default()
        };
        let g = cfg.build(3);
        assert_eq!(g.num_entities(), 300);
        assert_eq!(g.num_relations(), 12);
        assert_eq!(g.num_triples(), 2_000);
        for t in g.triples() {
            assert!(!t.is_loop());
        }
        // dedup on by default
        let set: std::collections::HashSet<_> = g.triples().iter().collect();
        assert_eq!(set.len(), g.num_triples());
    }

    #[test]
    fn saturated_config_terminates_short() {
        // 3 entities, loops forbidden, dedup on: at most 3*2*1=6 triples exist.
        let cfg = SyntheticKg {
            num_entities: 3,
            num_relations: 1,
            num_triples: 100,
            ..Default::default()
        };
        let g = cfg.build(5);
        assert!(g.num_triples() <= 6);
    }

    #[test]
    fn relation_skew_exceeds_entity_skew() {
        let cfg = SyntheticKg {
            num_entities: 2_000,
            num_relations: 100,
            num_triples: 20_000,
            entity_alpha: 1.0,
            relation_alpha: 1.4,
            ..Default::default()
        };
        let g = cfg.build(11);
        let mut rel = g.relation_frequencies();
        rel.sort_unstable_by(|a, b| b.cmp(a));
        let rel_top: u64 = rel.iter().take(1).sum();
        // The hottest relation should label a sizeable share of all triples.
        assert!(rel_top as f64 / g.num_triples() as f64 > 0.1);
    }

    #[test]
    fn scale_shrinks_relations_by_sqrt() {
        let cfg = SyntheticKg {
            num_entities: 10_000,
            num_relations: 100,
            num_triples: 100_000,
            ..Default::default()
        }
        .scale(0.01);
        assert_eq!(cfg.num_entities, 100);
        assert_eq!(cfg.num_triples, 1_000);
        // sqrt(0.01) = 0.1 → 10 relations: the vocabulary shrinks slower
        // than the graph, but per-key relation heat stays above entities'.
        assert_eq!(cfg.num_relations, 10);
        // Scaling up never inflates the vocabulary.
        let up = SyntheticKg {
            num_entities: 100,
            num_relations: 10,
            num_triples: 1_000,
            ..Default::default()
        }
        .scale(2.0);
        assert_eq!(up.num_relations, 10);
    }
}

//! Strongly-typed identifiers for entities, relations, and parameter keys.
//!
//! A knowledge graph has two disjoint id spaces (entities and relations);
//! the parameter server has a single flat key space. [`KeySpace`] maps
//! between them: entity `i` occupies key `i`, relation `j` occupies key
//! `num_entities + j`. Keeping the mapping in one place means every
//! component (cache, PS shards, partitioner) agrees on it by construction.

use serde::{Deserialize, Serialize};

/// Identifier of an entity (a vertex of the knowledge graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntityId(pub u32);

/// Identifier of a relation (an edge label of the knowledge graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RelationId(pub u32);

/// A key in the parameter server's flat parameter space.
///
/// Entities and relations share one key space so a single KV store (and a
/// single cache) can hold both kinds of embedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ParamKey(pub u64);

impl EntityId {
    /// The raw index, usable to address per-entity arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RelationId {
    /// The raw index, usable to address per-relation arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ParamKey {
    /// The raw index into the flat parameter space.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The mapping between (entity, relation) id spaces and the flat
/// parameter-key space.
///
/// Entities come first (`0..num_entities`), relations after
/// (`num_entities..num_entities + num_relations`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeySpace {
    num_entities: u64,
    num_relations: u64,
}

impl KeySpace {
    /// Create a key space for a graph with the given entity/relation counts.
    pub fn new(num_entities: usize, num_relations: usize) -> Self {
        Self {
            num_entities: num_entities as u64,
            num_relations: num_relations as u64,
        }
    }

    /// Number of entity keys.
    #[inline]
    pub fn num_entities(&self) -> usize {
        self.num_entities as usize
    }

    /// Number of relation keys.
    #[inline]
    pub fn num_relations(&self) -> usize {
        self.num_relations as usize
    }

    /// Total number of keys (entities + relations).
    #[inline]
    pub fn len(&self) -> usize {
        (self.num_entities + self.num_relations) as usize
    }

    /// Whether the key space is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Key of an entity embedding.
    #[inline]
    pub fn entity_key(&self, e: EntityId) -> ParamKey {
        debug_assert!((e.0 as u64) < self.num_entities, "entity id out of range");
        ParamKey(e.0 as u64)
    }

    /// Key of a relation embedding.
    #[inline]
    pub fn relation_key(&self, r: RelationId) -> ParamKey {
        debug_assert!(
            (r.0 as u64) < self.num_relations,
            "relation id out of range"
        );
        ParamKey(self.num_entities + r.0 as u64)
    }

    /// Whether a key addresses an entity embedding.
    #[inline]
    pub fn is_entity(&self, k: ParamKey) -> bool {
        k.0 < self.num_entities
    }

    /// Whether a key addresses a relation embedding.
    #[inline]
    pub fn is_relation(&self, k: ParamKey) -> bool {
        k.0 >= self.num_entities && k.0 < self.num_entities + self.num_relations
    }

    /// Invert a key back to its typed id.
    ///
    /// Returns `None` when the key is outside the space.
    pub fn classify(&self, k: ParamKey) -> Option<KeyKind> {
        if k.0 < self.num_entities {
            Some(KeyKind::Entity(EntityId(k.0 as u32)))
        } else if k.0 < self.num_entities + self.num_relations {
            Some(KeyKind::Relation(RelationId(
                (k.0 - self.num_entities) as u32,
            )))
        } else {
            None
        }
    }
}

/// The typed identity behind a [`ParamKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyKind {
    /// The key addresses this entity's embedding.
    Entity(EntityId),
    /// The key addresses this relation's embedding.
    Relation(RelationId),
}

impl std::fmt::Display for EntityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl std::fmt::Display for RelationId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl std::fmt::Display for ParamKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "k{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_keys_precede_relation_keys() {
        let ks = KeySpace::new(10, 3);
        assert_eq!(ks.entity_key(EntityId(0)), ParamKey(0));
        assert_eq!(ks.entity_key(EntityId(9)), ParamKey(9));
        assert_eq!(ks.relation_key(RelationId(0)), ParamKey(10));
        assert_eq!(ks.relation_key(RelationId(2)), ParamKey(12));
        assert_eq!(ks.len(), 13);
    }

    #[test]
    fn classify_round_trips() {
        let ks = KeySpace::new(5, 4);
        for e in 0..5u32 {
            let k = ks.entity_key(EntityId(e));
            assert_eq!(ks.classify(k), Some(KeyKind::Entity(EntityId(e))));
            assert!(ks.is_entity(k));
            assert!(!ks.is_relation(k));
        }
        for r in 0..4u32 {
            let k = ks.relation_key(RelationId(r));
            assert_eq!(ks.classify(k), Some(KeyKind::Relation(RelationId(r))));
            assert!(ks.is_relation(k));
            assert!(!ks.is_entity(k));
        }
    }

    #[test]
    fn classify_out_of_range_is_none() {
        let ks = KeySpace::new(5, 4);
        assert!(ks.classify(ParamKey(8)).is_some());
        assert_eq!(ks.classify(ParamKey(9)), None);
        assert_eq!(ks.classify(ParamKey(u64::MAX)), None);
    }

    #[test]
    fn empty_keyspace() {
        let ks = KeySpace::new(0, 0);
        assert!(ks.is_empty());
        assert_eq!(ks.len(), 0);
        assert_eq!(ks.classify(ParamKey(0)), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(EntityId(3).to_string(), "e3");
        assert_eq!(RelationId(7).to_string(), "r7");
        assert_eq!(ParamKey(11).to_string(), "k11");
    }
}

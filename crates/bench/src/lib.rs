//! Experiment harness for the HET-KG reproduction.
//!
//! The `repro` binary (see `src/bin/repro.rs`) has one subcommand per table
//! and figure in the paper's evaluation section; this library holds the
//! shared experiment plumbing: dataset presets sized for the harness,
//! experiment records serialized as JSON for EXPERIMENTS.md, and text-table
//! rendering.

pub mod experiments;
pub mod record;
pub mod render;
pub mod workloads;

//! Workload presets for the experiment harness.
//!
//! Each paper dataset gets a harness-sized preset: the same *shape*
//! (entity/relation ratio, skew) at a scale that runs on one machine in
//! minutes. `--full` on the `repro` binary switches to the published sizes
//! (slow; the Freebase preset stays at 1/86 scale regardless — see
//! DESIGN.md).

use hetkg_kgraph::generator::SyntheticKg;
use hetkg_kgraph::split::Split;
use hetkg_kgraph::{datasets, KnowledgeGraph, Triple};
use serde::{Deserialize, Serialize};

/// Which paper dataset a workload mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dataset {
    /// FB15k (14,951 entities / 1,345 relations / 592,213 triples).
    Fb15k,
    /// WN18 (40,943 entities / 18 relations / 151,442 triples).
    Wn18,
    /// Freebase-86m (scaled; see DESIGN.md).
    Freebase86m,
}

impl Dataset {
    /// All three, in the paper's order.
    pub fn all() -> [Dataset; 3] {
        [Dataset::Fb15k, Dataset::Wn18, Dataset::Freebase86m]
    }

    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Fb15k => "FB15k",
            Dataset::Wn18 => "WN18",
            Dataset::Freebase86m => "Freebase-86m",
        }
    }

    /// The generator preset at harness scale (`full = false`) or published
    /// scale (`full = true`).
    pub fn generator(self, full: bool) -> SyntheticKg {
        let base = match self {
            Dataset::Fb15k => datasets::fb15k_like(),
            Dataset::Wn18 => datasets::wn18_like(),
            Dataset::Freebase86m => datasets::freebase86m_like(),
        };
        if full {
            base
        } else {
            // Harness scale: ~2-6% of published size, large enough for the
            // skew statistics to be stable.
            match self {
                Dataset::Fb15k => base.scale(0.05),
                Dataset::Wn18 => base.scale(0.10),
                Dataset::Freebase86m => base.scale(0.01), // of the 1/86 preset
            }
        }
    }

    /// Build the graph deterministically.
    pub fn build(self, full: bool, seed: u64) -> KnowledgeGraph {
        self.generator(full).build(seed)
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully materialized workload: graph + splits + a bounded eval subset.
pub struct Workload {
    /// Which dataset shape this is.
    pub dataset: Dataset,
    /// The graph.
    pub kg: KnowledgeGraph,
    /// 90/5/5 split.
    pub split: Split,
    /// Bounded evaluation subset (validation triples, capped).
    pub eval_set: Vec<Triple>,
}

impl Workload {
    /// Materialize a dataset at harness or full scale.
    pub fn new(dataset: Dataset, full: bool, seed: u64) -> Self {
        let kg = dataset.build(full, seed);
        let split = Split::ninety_five_five(&kg, seed);
        let eval_set: Vec<Triple> = split.valid.iter().copied().take(200).collect();
        Self {
            dataset,
            kg,
            split,
            eval_set,
        }
    }

    /// One-line description for experiment headers.
    pub fn describe(&self) -> String {
        format!(
            "{}: {} entities / {} relations / {} triples",
            self.dataset,
            self.kg.num_entities(),
            self.kg.num_relations(),
            self.kg.num_triples()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_scale_is_tractable() {
        for d in Dataset::all() {
            let g = d.generator(false);
            assert!(g.num_triples <= 60_000, "{d}: {} triples", g.num_triples);
            assert!(g.num_entities >= 100, "{d}");
        }
    }

    #[test]
    fn full_scale_matches_published_shapes() {
        assert_eq!(Dataset::Fb15k.generator(true).num_relations, 1_345);
        assert_eq!(Dataset::Wn18.generator(true).num_relations, 18);
    }

    #[test]
    fn workload_materializes_with_eval_subset() {
        let w = Workload::new(Dataset::Wn18, false, 3);
        assert!(!w.split.train.is_empty());
        assert!(w.eval_set.len() <= 200);
        assert!(!w.eval_set.is_empty());
        assert!(w.describe().contains("WN18"));
    }
}

//! Plain-text table rendering for experiment output.

/// Render rows under headers with per-column width alignment.
pub fn table(columns: &[String], rows: &[Vec<String>]) -> String {
    let ncols = columns.len();
    let mut widths: Vec<usize> = columns.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(columns, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1))));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format seconds compactly (`12.3s` / `4.5m`).
pub fn secs(s: f64) -> String {
    if s >= 120.0 {
        format!("{:.1}m", s / 60.0)
    } else {
        format!("{s:.1}s")
    }
}

/// Format a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Format bytes as MB with one decimal.
pub fn mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1e6)
}

/// Render a rank-ordered series as a sparkline-ish text bar chart (for the
/// figure subcommands where the paper has a plot).
pub fn bars(labels: &[String], values: &[f64], width: usize) -> String {
    let max = values.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
    let lwidth = labels.iter().map(String::len).max().unwrap_or(0);
    let mut out = String::new();
    for (l, &v) in labels.iter().zip(values) {
        let n = ((v / max) * width as f64).round() as usize;
        out.push_str(&format!("{l:>lwidth$} | {} {v:.4}\n", "#".repeat(n)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &s(&["sys", "time"]),
            &[s(&["DGL-KE", "12.0"]), s(&["PBG", "300.5"])],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("sys"));
        assert!(lines[2].contains("DGL-KE"));
        // widths: "DGL-KE"=6, "300.5"=5
        assert!(lines[3].starts_with("   PBG"));
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(30.0), "30.0s");
        assert_eq!(secs(300.0), "5.0m");
        assert_eq!(pct(0.753), "75.3%");
        assert_eq!(mb(2_500_000), "2.5");
    }

    #[test]
    fn bars_scale_to_max() {
        let out = bars(&s(&["a", "b"]), &[1.0, 2.0], 10);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[1].matches('#').count() == 10);
        assert!(lines[0].matches('#').count() == 5);
    }

    #[test]
    fn empty_table_is_safe() {
        let t = table(&s(&["x"]), &[]);
        assert!(t.contains('x'));
    }
}

//! Machine-readable experiment records.
//!
//! Every `repro` subcommand appends a JSON record to
//! `experiments/<id>.json`, which is what EXPERIMENTS.md's paper-vs-measured
//! tables are built from.

use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// One experiment's output: the rendered table plus raw rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment id (e.g. "table3", "fig8b").
    pub id: String,
    /// Human title.
    pub title: String,
    /// Free-form parameter description.
    pub params: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (stringified cells, aligned with `columns`).
    pub rows: Vec<Vec<String>>,
    /// Notes on how to compare against the paper.
    pub shape_expectation: String,
}

impl ExperimentRecord {
    /// Where records are written, relative to the workspace root.
    pub fn dir() -> PathBuf {
        // CARGO_MANIFEST_DIR = crates/bench; results live at the repo root.
        let manifest = std::env::var("CARGO_MANIFEST_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("."));
        manifest
            .parent()
            .and_then(Path::parent)
            .map(|root| root.join("experiments"))
            .unwrap_or_else(|| PathBuf::from("experiments"))
    }

    /// Write this record as `experiments/<id>.json`.
    pub fn save(&self) -> std::io::Result<PathBuf> {
        let dir = Self::dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let json = serde_json::to_string_pretty(self).expect("record serializes");
        std::fs::write(&path, json)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_through_json() {
        let r = ExperimentRecord {
            id: "test-rec".into(),
            title: "t".into(),
            params: "p".into(),
            columns: vec!["a".into(), "b".into()],
            rows: vec![vec!["1".into(), "2".into()]],
            shape_expectation: "s".into(),
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: ExperimentRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, "test-rec");
        assert_eq!(back.rows[0][1], "2");
    }

    #[test]
    fn save_writes_a_file() {
        let r = ExperimentRecord {
            id: "unit-test-scratch".into(),
            title: "t".into(),
            params: String::new(),
            columns: vec![],
            rows: vec![],
            shape_expectation: String::new(),
        };
        let path = r.save().unwrap();
        assert!(path.exists());
        std::fs::remove_file(path).ok();
    }
}

//! The motivation measurements: Table I (communication dominates the
//! baseline) and Fig. 2 (embedding accesses are skewed; relations are hotter
//! than entities).

use super::ExpCtx;
use crate::record::ExperimentRecord;
use crate::render::{pct, secs};
use crate::workloads::{Dataset, Workload};
use hetkg_core::prefetch::Prefetcher;
use hetkg_embed::negative::NegativeSampler;
use hetkg_kgraph::stats::AccessCounter;
use hetkg_train::{train, SystemKind, TrainConfig};

/// Table I: per-dataset DGL-KE training time split into computation and
/// communication — communication dominates, most of all on the large graph.
pub fn table1(ctx: ExpCtx) -> ExperimentRecord {
    let mut rows = Vec::new();
    for dataset in Dataset::all() {
        let w = Workload::new(dataset, ctx.full, ctx.seed);
        let mut cfg = TrainConfig::small(SystemKind::DglKe);
        cfg.machines = 4;
        cfg.epochs = ctx.epochs(3);
        // The paper uses d = 400; communication share grows with d. Use a
        // mid-size dim so harness runs stay fast but the share is realistic.
        cfg.dim = 128;
        cfg.eval_candidates = None;
        let report = train(&w.kg, &w.split.train, &[], &cfg);
        rows.push(vec![
            dataset.name().to_string(),
            secs(report.total_compute_secs()),
            secs(report.total_comm_secs()),
            secs(report.total_secs()),
            pct(report.comm_fraction()),
        ]);
    }
    ExperimentRecord {
        id: "table1".into(),
        title: "DGL-KE time breakdown: communication dominates".into(),
        params: "DGL-KE-sim, TransE-L2, d=128, 4 machines, 1 Gbps".into(),
        columns: ["dataset", "compute", "comm", "total", "comm share"]
            .map(String::from)
            .to_vec(),
        rows,
        shape_expectation: "communication is the majority share on every dataset and \
                            largest on Freebase-86m (paper: >70% there with d=400)"
            .into(),
    }
}

/// Fig. 2: access-frequency skew of embeddings over one epoch of sampled
/// training (positives + negatives), per dataset.
pub fn fig2(ctx: ExpCtx) -> ExperimentRecord {
    let mut rows = Vec::new();
    for dataset in Dataset::all() {
        let w = Workload::new(dataset, ctx.full, ctx.seed);
        let ks = w.kg.key_space();
        let mut counter = AccessCounter::new(ks);
        // Sample one epoch's worth of mini-batches exactly as a worker does.
        let batch_size = 64;
        let iters = (w.split.train.len() / batch_size).clamp(10, 500);
        let mut sampler = Prefetcher::new(batch_size, ks, ctx.seed);
        let mut negatives = NegativeSampler::new(
            w.kg.num_entities(),
            hetkg_embed::negative::NegConfig::default(),
            ctx.seed,
        );
        let pf = sampler.prefetch(&w.split.train, &mut negatives, iters);
        for batch in &pf.batches {
            counter.record_batch(&batch.positives);
            for n in &batch.negatives {
                counter.record_triple(n.triple);
            }
        }
        rows.push(vec![
            dataset.name().to_string(),
            pct(counter.entity_top_share(0.01)),
            pct(counter.relation_top_share(0.01)),
            format!("{:.1}x", counter.heterogeneity_factor()),
            format!(
                "{:.3}",
                hetkg_kgraph::stats::gini(&counter.counts()[..ks.num_entities()])
            ),
            format!(
                "{:.3}",
                hetkg_kgraph::stats::gini(&counter.counts()[ks.num_entities()..])
            ),
        ]);
    }
    ExperimentRecord {
        id: "fig2".into(),
        title: "Access-frequency skew micro-benchmark".into(),
        params: "one epoch of sampled batches (positives + negatives), batch 64".into(),
        columns: [
            "dataset",
            "top-1% entity share",
            "top-1% relation share",
            "relation/entity heat",
            "entity gini",
            "relation gini",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        shape_expectation: "a small fraction of embeddings dominates accesses; \
                            relations are far hotter per key than entities \
                            (paper's FB15k: top-1% entities ≈6%, relations ≈36%)"
            .into(),
    }
}

/// Table I companion used by tests: the communication share of one quick
/// DGL-KE run.
pub fn dglke_comm_share(ctx: ExpCtx, dataset: Dataset) -> f64 {
    let w = Workload::new(dataset, false, ctx.seed);
    let mut cfg = TrainConfig::small(SystemKind::DglKe);
    cfg.epochs = 1;
    cfg.dim = 128;
    cfg.machines = 4;
    let report = train(&w.kg, &w.split.train, &[], &cfg);
    report.comm_fraction()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpCtx {
        ExpCtx {
            quick: true,
            ..Default::default()
        }
    }

    #[test]
    fn fig2_shows_relation_heat() {
        let r = fig2(quick());
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            let heat: f64 = row[3].trim_end_matches('x').parse().unwrap();
            assert!(heat > 1.0, "relations must be hotter: {row:?}");
        }
    }

    #[test]
    fn table1_reports_all_datasets_with_nonzero_comm() {
        let r = table1(quick());
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            let share: f64 = row[4].trim_end_matches('%').parse().unwrap();
            assert!(share > 0.0, "comm share must be positive: {row:?}");
            // The "communication dominates" claim (paper: >70%) holds for
            // optimized compute; debug builds inflate compute ~50x, so only
            // assert it in release.
            if !cfg!(debug_assertions) {
                assert!(share > 30.0, "comm share should be substantial: {row:?}");
            }
        }
    }
}

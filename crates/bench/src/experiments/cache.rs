//! The cache studies: Fig. 8 (capacity / staleness / entity-ratio sweeps),
//! Fig. 9 (consistency matters), Table VI (policy comparison), Table VII
//! (heterogeneity ablation).

use super::ExpCtx;
use crate::record::ExperimentRecord;
use crate::render::{mb, pct, secs};
use crate::workloads::{Dataset, Workload};
use hetkg_core::baselines::{
    replay, FifoCache, ImportanceCache, LfuCache, LruCache, ReplacementCache,
};
use hetkg_core::filter::{filter_hot_set, FilterConfig};
use hetkg_core::metrics::CacheStats;
use hetkg_core::prefetch::Prefetcher;
use hetkg_embed::negative::{NegConfig, NegativeSampler};
use hetkg_kgraph::ParamKey;
use hetkg_train::config::CacheConfig;
use hetkg_train::{train, SystemKind, TrainConfig};

fn hetkg_run(
    w: &Workload,
    cache: CacheConfig,
    epochs: usize,
    ctx: ExpCtx,
) -> hetkg_train::TrainReport {
    let mut cfg = TrainConfig::small(SystemKind::HetKgDps);
    cfg.machines = 4;
    cfg.dim = 64;
    cfg.epochs = epochs;
    cfg.cache = cache;
    cfg.seed = ctx.seed;
    cfg.eval_candidates = Some(200);
    train(&w.kg, &w.split.train, &w.eval_set, &cfg)
}

/// Fig. 8a: cache-size sweep — hit ratio rises with capacity, MRR stays
/// flat.
pub fn fig8a(ctx: ExpCtx) -> ExperimentRecord {
    let w = Workload::new(Dataset::Freebase86m, ctx.full, ctx.seed);
    let epochs = ctx.epochs(4);
    let mut rows = Vec::new();
    for frac in [0.005, 0.01, 0.02, 0.04, 0.08, 0.16] {
        let report = hetkg_run(
            &w,
            CacheConfig {
                capacity_fraction: frac,
                ..Default::default()
            },
            epochs,
            ctx,
        );
        rows.push(vec![
            pct(frac),
            pct(report.total_cache().hit_ratio()),
            mb(report.total_traffic().total_bytes()),
            format!(
                "{:.3}",
                report.final_metrics.as_ref().map_or(f64::NAN, |m| m.mrr())
            ),
        ]);
    }
    ExperimentRecord {
        id: "fig8a".into(),
        title: "Impact of cache size".into(),
        params: format!("{} | HET-KG-D, {epochs} epochs", w.describe()),
        columns: ["capacity", "hit ratio", "MB moved", "MRR"]
            .map(String::from)
            .to_vec(),
        rows,
        shape_expectation: "hit ratio increases monotonically with capacity while \
                            MRR stays roughly flat (paper Fig. 8a)"
            .into(),
    }
}

/// Fig. 8b: staleness sweep — hit ratio improves, MRR degrades past P≈8.
pub fn fig8b(ctx: ExpCtx) -> ExperimentRecord {
    let w = Workload::new(Dataset::Freebase86m, ctx.full, ctx.seed);
    let epochs = ctx.epochs(4);
    let mut rows = Vec::new();
    for p in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let report = hetkg_run(
            &w,
            CacheConfig {
                staleness: p,
                ..Default::default()
            },
            epochs,
            ctx,
        );
        rows.push(vec![
            p.to_string(),
            pct(report.total_cache().hit_ratio()),
            mb(report.total_traffic().total_bytes()),
            format!(
                "{:.3}",
                report.final_metrics.as_ref().map_or(f64::NAN, |m| m.mrr())
            ),
        ]);
    }
    ExperimentRecord {
        id: "fig8b".into(),
        title: "Impact of bounded staleness P".into(),
        params: format!("{} | HET-KG-D, {epochs} epochs", w.describe()),
        columns: ["P", "hit ratio", "MB moved", "MRR"]
            .map(String::from)
            .to_vec(),
        rows,
        shape_expectation: "traffic falls as P grows (fewer syncs); MRR holds for \
                            small P and degrades for large P (paper Fig. 8b: stable \
                            up to P≈8)"
            .into(),
    }
}

/// Fig. 8c: entity-ratio sweep — hit ratio peaks at a small entity share.
///
/// Uses the paper's Freebase batch shape (b=512, many shared negatives):
/// large batches make the hot relations present in every batch while the
/// uniform negatives keep individual entities rarely repeated — the regime
/// where relation slots out-earn entity slots until most of the budget.
pub fn fig8c(ctx: ExpCtx) -> ExperimentRecord {
    let w = Workload::new(Dataset::Freebase86m, ctx.full, ctx.seed);
    let epochs = ctx.epochs(3);
    let mut rows = Vec::new();
    for ratio in [0.0, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let mut cfg = TrainConfig::small(SystemKind::HetKgDps);
        cfg.machines = 4;
        cfg.dim = 64;
        cfg.epochs = epochs;
        cfg.cache = CacheConfig {
            entity_fraction: ratio,
            ..Default::default()
        };
        cfg.seed = ctx.seed;
        cfg.batch_size = 512;
        cfg.negatives = NegConfig {
            per_positive: 64,
            strategy: hetkg_embed::negative::NegStrategy::Chunked { chunk_size: 32 },
        };
        let report = train(&w.kg, &w.split.train, &[], &cfg);
        rows.push(vec![
            pct(ratio),
            pct(report.total_cache().hit_ratio()),
            mb(report.total_traffic().total_bytes()),
        ]);
    }
    ExperimentRecord {
        id: "fig8c".into(),
        title: "Impact of hot-embedding selection (entity ratio)".into(),
        params: format!("{} | HET-KG-D, {epochs} epochs", w.describe()),
        columns: ["entity ratio", "hit ratio", "MB moved"]
            .map(String::from)
            .to_vec(),
        rows,
        shape_expectation: "hit ratio rises then falls with the entity ratio, \
                            peaking at a small ratio (paper Fig. 8c: 25%) because \
                            relations are denser per key"
            .into(),
    }
}

/// Fig. 9: epoch-MRR training curves for tight vs loose consistency.
pub fn fig9(ctx: ExpCtx) -> ExperimentRecord {
    let w = Workload::new(Dataset::Freebase86m, ctx.full, ctx.seed);
    let epochs = ctx.epochs(6);
    let mut rows = Vec::new();
    for p in [1usize, 128] {
        let report = hetkg_run(
            &w,
            CacheConfig {
                staleness: p,
                ..Default::default()
            },
            epochs,
            ctx,
        );
        for e in &report.epochs {
            if let Some(mrr) = e.mrr {
                rows.push(vec![
                    format!("P={p}"),
                    e.epoch.to_string(),
                    format!("{mrr:.3}"),
                ]);
            }
        }
    }
    ExperimentRecord {
        id: "fig9".into(),
        title: "Impact of the synchronization threshold on convergence".into(),
        params: format!("{} | HET-KG-D, {epochs} epochs", w.describe()),
        columns: ["staleness", "epoch", "MRR"].map(String::from).to_vec(),
        rows,
        shape_expectation: "the P=1 curve dominates the P=128 curve: relaxing \
                            consistency hurts convergence (paper Fig. 9: 0.67 vs \
                            0.59 final MRR)"
            .into(),
    }
}

/// Bounded-staleness divergence study (empirical §IV-C): how far do cached
/// rows drift from their global replicas as the sync period `P` grows?
pub fn divergence(ctx: ExpCtx) -> ExperimentRecord {
    let w = Workload::new(Dataset::Fb15k, ctx.full, ctx.seed);
    let epochs = ctx.epochs(4);
    let mut rows = Vec::new();
    for p in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let report = hetkg_run(
            &w,
            CacheConfig {
                staleness: p,
                ..Default::default()
            },
            epochs,
            ctx,
        );
        // Mean per-key divergence at sync time, averaged over post-warmup
        // epochs (max-statistics would bias toward small P, which syncs —
        // and therefore samples — far more often).
        let post_warmup: Vec<f64> = report
            .epochs
            .iter()
            .skip(1)
            .map(|e| e.mean_divergence)
            .collect();
        let steady = if post_warmup.is_empty() {
            0.0
        } else {
            post_warmup.iter().sum::<f64>() / post_warmup.len() as f64
        };
        rows.push(vec![
            p.to_string(),
            format!("{:.4}", steady),
            format!(
                "{:.3}",
                report.final_metrics.as_ref().map_or(f64::NAN, |m| m.mrr())
            ),
        ]);
    }
    ExperimentRecord {
        id: "divergence".into(),
        title: "Cache-vs-global divergence under bounded staleness".into(),
        params: format!("{} | HET-KG-D, {epochs} epochs", w.describe()),
        columns: ["P", "mean L2 divergence at sync", "MRR"]
            .map(String::from)
            .to_vec(),
        rows,
        shape_expectation: "divergence at sync time grows with the staleness bound P \
                            and stays bounded for fixed P — the empirical form of \
                            §IV-C's bounded-staleness assumption"
            .into(),
    }
}

/// The static "importance cache" baseline's scores: rank by *node degree* —
/// the strategy HET uses for general embedding tables. Degree is an entity
/// notion: the baseline has no special treatment for relation embeddings,
/// which is exactly the node-heterogeneity blindness HET-KG fixes (§IV-B
/// discussion of HET vs HET-KG).
fn degree_scores(w: &Workload) -> Vec<(ParamKey, u64)> {
    w.kg.entity_degrees()
        .iter()
        .enumerate()
        .map(|(e, d)| (ParamKey(e as u64), *d))
        .collect()
}

/// Replay HET-KG's DPS selection over a trace: every `window` batches the
/// hot set is rebuilt from that window's accesses (exactly what prefetch
/// does in the live system), then accesses replay against it.
fn hetkg_replay(
    trace_batches: &[Vec<ParamKey>],
    capacity: usize,
    ks: hetkg_kgraph::KeySpace,
    window: usize,
) -> CacheStats {
    let mut stats = CacheStats::new();
    for chunk in trace_batches.chunks(window) {
        let window_accesses: Vec<ParamKey> = chunk.iter().flatten().copied().collect();
        let hot = filter_hot_set(&window_accesses, ks, &FilterConfig::paper_default(capacity));
        let mut cache = ImportanceCache::from_keys(capacity, hot.keys());
        for batch in chunk {
            for &k in batch {
                stats.record(cache.access(k));
            }
        }
    }
    stats
}

/// Table VI: hit-ratio comparison — FIFO, LRU, LFU, importance, HET-KG.
pub fn table6(ctx: ExpCtx) -> ExperimentRecord {
    let mut rows = Vec::new();
    for dataset in Dataset::all() {
        let w = Workload::new(dataset, ctx.full, ctx.seed);
        let ks = w.kg.key_space();
        let capacity = (ks.len() / 20).max(8); // 5% of keys
        let batches = if ctx.quick { 50 } else { 300 };
        // Per-batch traces so HET-KG's windowed reconstruction is faithful.
        let mut sampler = Prefetcher::new(64, ks, ctx.seed);
        let mut negatives =
            NegativeSampler::new(w.kg.num_entities(), NegConfig::default(), ctx.seed);
        let pf = sampler.prefetch(&w.split.train, &mut negatives, batches);
        let trace_batches: Vec<Vec<ParamKey>> =
            pf.batches.iter().map(|b| b.unique_keys(ks)).collect();
        let flat: Vec<ParamKey> = trace_batches.iter().flatten().copied().collect();
        let scores = degree_scores(&w);

        let fifo = replay(&mut FifoCache::new(capacity), &flat).hit_ratio();
        let lru = replay(&mut LruCache::new(capacity), &flat).hit_ratio();
        let lfu = replay(&mut LfuCache::new(capacity), &flat).hit_ratio();
        let imp = replay(&mut ImportanceCache::from_scores(capacity, &scores), &flat).hit_ratio();
        let het = hetkg_replay(&trace_batches, capacity, ks, 16).hit_ratio();
        rows.push(vec![
            dataset.name().to_string(),
            pct(fifo),
            pct(lru),
            pct(lfu),
            pct(imp),
            pct(het),
        ]);
    }
    ExperimentRecord {
        id: "table6".into(),
        title: "Cache hit ratio vs simple caching techniques".into(),
        params: "capacity = 5% of keys; trace = sampled training accesses".into(),
        columns: ["dataset", "FIFO", "LRU", "LFU", "importance", "HET-KG"]
            .map(String::from)
            .to_vec(),
        rows,
        shape_expectation: "FIFO < LRU < importance < HET-KG on every dataset \
                            (paper Table VI; e.g. Freebase-86m 6.6/8.6/34.3/43.1%)"
            .into(),
    }
}

/// Table VII: heterogeneity ablation — HET-KG vs HET-KG-N (no 25/75 split).
pub fn table7(ctx: ExpCtx) -> ExperimentRecord {
    let epochs = ctx.epochs(6);
    let mut rows = Vec::new();
    for dataset in [Dataset::Fb15k, Dataset::Wn18] {
        let w = Workload::new(dataset, ctx.full, ctx.seed);
        for (label, aware) in [("HET-KG", true), ("HET-KG-N", false)] {
            let report = hetkg_run(
                &w,
                CacheConfig {
                    heterogeneity_aware: aware,
                    ..Default::default()
                },
                epochs,
                ctx,
            );
            let m = report.final_metrics.as_ref().expect("eval enabled");
            rows.push(vec![
                dataset.name().to_string(),
                label.to_string(),
                format!("{:.3}", m.mrr()),
                format!("{:.3}", m.hits(1)),
                format!("{:.3}", m.hits(10)),
                secs(report.total_secs()),
                pct(report.total_cache().hit_ratio()),
            ]);
        }
    }
    ExperimentRecord {
        id: "table7".into(),
        title: "Node-heterogeneity optimization ablation".into(),
        params: format!("HET-KG-D, {epochs} epochs, d=32, 4 machines"),
        columns: [
            "dataset",
            "system",
            "MRR",
            "Hits@1",
            "Hits@10",
            "time",
            "hit ratio",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        shape_expectation: "HET-KG-N (no entity/relation split) can be slightly \
                            faster but loses accuracy relative to HET-KG \
                            (paper Table VII)"
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpCtx {
        ExpCtx {
            quick: true,
            ..Default::default()
        }
    }

    #[test]
    fn fig8a_hit_ratio_rises_with_capacity() {
        let r = fig8a(quick());
        let first: f64 = r.rows[0][1].trim_end_matches('%').parse().unwrap();
        let last: f64 = r.rows.last().unwrap()[1]
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(
            last > first,
            "hit ratio must rise with capacity: {first} -> {last}"
        );
    }

    #[test]
    fn table6_hetkg_beats_simple_caches() {
        let r = table6(quick());
        for row in &r.rows {
            let v = |i: usize| row[i].trim_end_matches('%').parse::<f64>().unwrap();
            let (fifo, lru, imp, het) = (v(1), v(2), v(4), v(5));
            assert!(fifo <= lru + 1.0, "{row:?}");
            assert!(
                het > imp - 1.0,
                "HET-KG must be at least importance-level: {row:?}"
            );
            assert!(het > fifo, "{row:?}");
        }
    }

    #[test]
    fn hetkg_replay_with_full_capacity_hits_everything_after_construction() {
        let w = Workload::new(Dataset::Wn18, false, 1);
        let ks = w.kg.key_space();
        let mut sampler = Prefetcher::new(16, ks, 1);
        let mut negatives = NegativeSampler::new(w.kg.num_entities(), NegConfig::default(), 1);
        let pf = sampler.prefetch(&w.split.train, &mut negatives, 10);
        let batches: Vec<Vec<ParamKey>> = pf.batches.iter().map(|b| b.unique_keys(ks)).collect();
        let stats = hetkg_replay(&batches, ks.len(), ks, 10);
        assert_eq!(
            stats.misses, 0,
            "full-capacity prefetch-built cache never misses"
        );
    }
}

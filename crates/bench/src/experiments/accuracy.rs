//! Tables III–V: the link-prediction accuracy/efficiency grid —
//! systems × models per dataset.

use super::ExpCtx;
use crate::record::ExperimentRecord;

use crate::workloads::{Dataset, Workload};
use hetkg_embed::ModelKind;
use hetkg_train::{train, SystemKind, TrainConfig};

const SYSTEMS: [SystemKind; 4] = [
    SystemKind::Pbg,
    SystemKind::DglKe,
    SystemKind::HetKgCps,
    SystemKind::HetKgDps,
];

/// Run one (system, model) cell and return a table row.
fn run_cell(
    w: &Workload,
    system: SystemKind,
    model: ModelKind,
    epochs: usize,
    ctx: ExpCtx,
) -> Vec<String> {
    let mut cfg = TrainConfig::small(system);
    cfg.model = model;
    // The paper trains d = 400; d = 128 keeps the harness fast while staying
    // in the bytes-dominant communication regime where the cache pays off.
    cfg.dim = 128;
    cfg.machines = 4;
    cfg.epochs = epochs;
    cfg.seed = ctx.seed;
    cfg.eval_candidates = Some(200);
    let report = train(&w.kg, &w.split.train, &w.eval_set, &cfg);
    let m = report.final_metrics.as_ref().expect("final eval enabled");
    vec![
        system.to_string(),
        model.to_string(),
        format!("{:.3}", m.mrr()),
        format!("{:.3}", m.hits(1)),
        format!("{:.3}", m.hits(10)),
        format!("{:.2}s", report.total_secs()),
    ]
}

fn accuracy_grid(
    id: &str,
    dataset: Dataset,
    models: &[ModelKind],
    epochs: usize,
    ctx: ExpCtx,
) -> ExperimentRecord {
    let w = Workload::new(dataset, ctx.full, ctx.seed);
    let epochs = ctx.epochs(epochs);
    let mut rows = Vec::new();
    for &model in models {
        for system in SYSTEMS {
            rows.push(run_cell(&w, system, model, epochs, ctx));
        }
    }
    ExperimentRecord {
        id: id.into(),
        title: format!("Link prediction on {}", dataset.name()),
        params: format!("{} | {epochs} epochs, d=128, 4 machines", w.describe()),
        columns: ["system", "model", "MRR", "Hits@1", "Hits@10", "time"]
            .map(String::from)
            .to_vec(),
        rows,
        shape_expectation: "HET-KG-C/D reach MRR comparable to DGL-KE (within a few \
                            points) in less or equal simulated time; PBG is the \
                            slowest (paper: 3.7x vs PBG, 1.1x vs DGL-KE)"
            .into(),
    }
}

/// Table III: FB15k, TransE + DistMult.
pub fn table3(ctx: ExpCtx) -> ExperimentRecord {
    accuracy_grid(
        "table3",
        Dataset::Fb15k,
        &[ModelKind::TransEL2, ModelKind::DistMult],
        10,
        ctx,
    )
}

/// Table IV: WN18, TransE + DistMult (paper trains 60 epochs; harness 12).
pub fn table4(ctx: ExpCtx) -> ExperimentRecord {
    accuracy_grid(
        "table4",
        Dataset::Wn18,
        &[ModelKind::TransEL2, ModelKind::DistMult],
        12,
        ctx,
    )
}

/// Table V: Freebase-86m (scaled), TransE only, 10 epochs.
pub fn table5(ctx: ExpCtx) -> ExperimentRecord {
    accuracy_grid(
        "table5",
        Dataset::Freebase86m,
        &[ModelKind::TransEL2],
        6,
        ctx,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_all_systems_and_models() {
        let ctx = ExpCtx {
            quick: true,
            ..Default::default()
        };
        let r = table3(ctx);
        assert_eq!(r.rows.len(), 8); // 2 models × 4 systems
        for row in &r.rows {
            let mrr: f64 = row[2].parse().unwrap();
            assert!((0.0..=1.0).contains(&mrr), "{row:?}");
        }
    }

    #[test]
    fn hetkg_accuracy_is_comparable_to_dglke() {
        let ctx = ExpCtx {
            quick: false,
            ..Default::default()
        };
        let w = Workload::new(Dataset::Wn18, false, 42);
        let dgl = run_cell(&w, SystemKind::DglKe, ModelKind::TransEL2, 5, ctx);
        let het = run_cell(&w, SystemKind::HetKgCps, ModelKind::TransEL2, 5, ctx);
        let dgl_mrr: f64 = dgl[2].parse().unwrap();
        let het_mrr: f64 = het[2].parse().unwrap();
        assert!(
            (het_mrr - dgl_mrr).abs() < 0.15,
            "accuracies should be comparable: DGL-KE {dgl_mrr} vs HET-KG {het_mrr}"
        );
    }
}

//! Figs. 5–7: convergence over time, scalability with workers, and the
//! computation/communication breakdown.

use super::ExpCtx;
use crate::record::ExperimentRecord;
use crate::render::{mb, pct, secs};
use crate::workloads::{Dataset, Workload};
use hetkg_train::{train, SystemKind, TrainConfig};

const SYSTEMS: [SystemKind; 4] = [
    SystemKind::Pbg,
    SystemKind::DglKe,
    SystemKind::HetKgCps,
    SystemKind::HetKgDps,
];

/// Fig. 5: MRR-vs-time convergence series per system on the large dataset.
pub fn fig5(ctx: ExpCtx) -> ExperimentRecord {
    let w = Workload::new(Dataset::Freebase86m, ctx.full, ctx.seed);
    let epochs = ctx.epochs(6);
    let mut rows = Vec::new();
    for system in SYSTEMS {
        let mut cfg = TrainConfig::small(system);
        cfg.machines = 4;
        cfg.dim = 128;
        cfg.epochs = epochs;
        cfg.seed = ctx.seed;
        cfg.eval_candidates = Some(200);
        let report = train(&w.kg, &w.split.train, &w.eval_set, &cfg);
        for (t, mrr) in report.convergence_series() {
            rows.push(vec![
                system.to_string(),
                format!("{t:.2}"),
                format!("{mrr:.3}"),
            ]);
        }
    }
    ExperimentRecord {
        id: "fig5".into(),
        title: "Convergence: MRR vs (simulated) training time".into(),
        params: format!("{} | {epochs} epochs, d=128, 4 machines", w.describe()),
        columns: ["system", "time(s)", "MRR"].map(String::from).to_vec(),
        rows,
        shape_expectation: "all systems converge to similar MRR; HET-KG curves reach \
                            any given MRR earlier than DGL-KE, PBG latest \
                            (paper Fig. 5; HET-KG-D best on Freebase-86m)"
            .into(),
    }
}

/// Fig. 6: runtime speedup vs number of workers (strong scaling).
pub fn fig6(ctx: ExpCtx) -> ExperimentRecord {
    let w = Workload::new(Dataset::Freebase86m, ctx.full, ctx.seed);
    let epochs = ctx.epochs(2);
    let worker_counts = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    for system in [SystemKind::Pbg, SystemKind::DglKe, SystemKind::HetKgDps] {
        let mut base_time = None;
        for &n in &worker_counts {
            let mut cfg = TrainConfig::small(system);
            cfg.machines = n;
            cfg.dim = 32;
            cfg.epochs = epochs;
            cfg.seed = ctx.seed;
            cfg.eval_candidates = None;
            // The paper's Freebase-86m hyperparameters (Table II): large
            // batches amortize per-message latency — without them no PS
            // system scales.
            cfg.batch_size = 512;
            cfg.negatives = hetkg_embed::negative::NegConfig {
                per_positive: 16,
                strategy: hetkg_embed::negative::NegStrategy::Chunked { chunk_size: 32 },
            };
            let report = train(&w.kg, &w.split.train, &[], &cfg);
            let total = report.total_secs();
            let base = *base_time.get_or_insert(total);
            rows.push(vec![
                system.to_string(),
                n.to_string(),
                secs(total),
                format!("{:.2}x", base / total),
            ]);
        }
    }
    ExperimentRecord {
        id: "fig6".into(),
        title: "Scalability: speedup vs workers".into(),
        params: format!("{} | {epochs} epochs, d=32", w.describe()),
        columns: ["system", "workers", "time", "speedup"]
            .map(String::from)
            .to_vec(),
        rows,
        shape_expectation: "PBG's speedup flattens (lock server + dense relation \
                            transfer); DGL-KE and HET-KG scale, with HET-KG's \
                            speedup ≈30% above DGL-KE's on average (paper Fig. 6)"
            .into(),
    }
}

/// Fig. 7: per-dataset computation vs communication breakdown per system.
pub fn fig7(ctx: ExpCtx) -> ExperimentRecord {
    let epochs = ctx.epochs(3);
    let mut rows = Vec::new();
    for dataset in Dataset::all() {
        let w = Workload::new(dataset, ctx.full, ctx.seed);
        for system in SYSTEMS {
            let mut cfg = TrainConfig::small(system);
            cfg.machines = 4;
            cfg.dim = 128;
            cfg.epochs = epochs;
            cfg.seed = ctx.seed;
            cfg.eval_candidates = None;
            let report = train(&w.kg, &w.split.train, &[], &cfg);
            rows.push(vec![
                dataset.name().to_string(),
                system.to_string(),
                secs(report.total_compute_secs()),
                secs(report.total_comm_secs()),
                secs(report.total_secs()),
                pct(report.comm_fraction()),
                mb(report.total_traffic().total_bytes()),
            ]);
        }
    }
    ExperimentRecord {
        id: "fig7".into(),
        title: "Computation vs communication breakdown".into(),
        params: format!("{epochs} epochs, d=128, 4 machines, 1 Gbps"),
        columns: [
            "dataset",
            "system",
            "compute",
            "comm",
            "total",
            "comm share",
            "MB moved",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        shape_expectation: "DGL-KE and HET-KG have similar compute; HET-KG moves \
                            fewer bytes and spends less communication time; PBG's \
                            communication far exceeds the others (paper Fig. 7)"
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpCtx {
        ExpCtx {
            quick: true,
            ..Default::default()
        }
    }

    #[test]
    fn fig7_hetkg_moves_fewer_bytes_than_dglke() {
        let r = fig7(quick());
        // Rows come in groups of 4 per dataset: PBG, DGL-KE, HET-KG-C, HET-KG-D.
        for chunk in r.rows.chunks(4) {
            let bytes = |row: &Vec<String>| row[6].parse::<f64>().unwrap();
            let pbg = bytes(&chunk[0]);
            let dgl = bytes(&chunk[1]);
            let het_c = bytes(&chunk[2]);
            assert!(
                het_c < dgl,
                "HET-KG-C {het_c} < DGL-KE {dgl} ({})",
                chunk[0][0]
            );
            assert!(pbg > dgl, "PBG {pbg} > DGL-KE {dgl} ({})", chunk[0][0]);
        }
    }

    #[test]
    fn fig6_reports_speedups_relative_to_one_worker() {
        let r = fig6(quick());
        // Each system's first row is 1 worker with speedup 1.00x.
        for chunk in r.rows.chunks(4) {
            assert_eq!(chunk[0][1], "1");
            assert_eq!(chunk[0][3], "1.00x");
        }
    }
}

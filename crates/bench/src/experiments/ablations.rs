//! Extra ablations for design choices DESIGN.md calls out (not paper
//! figures, but the paper's §V motivates both).

use super::ExpCtx;
use crate::record::ExperimentRecord;
use crate::render::{mb, pct, secs};
use crate::workloads::{Dataset, Workload};
use hetkg_embed::negative::{NegConfig, NegStrategy};
use hetkg_partition::{quality, MetisLike, Partitioner, RandomPartitioner};
use hetkg_train::config::PartitionerKind;
use hetkg_train::{train, SystemKind, TrainConfig};

/// Partitioner ablation: METIS-like vs random — edge cut, balance, and the
/// resulting training communication.
pub fn partition(ctx: ExpCtx) -> ExperimentRecord {
    let epochs = ctx.epochs(2);
    let mut rows = Vec::new();
    for dataset in Dataset::all() {
        let w = Workload::new(dataset, ctx.full, ctx.seed);
        for (label, kind) in [
            ("metis-like", PartitionerKind::MetisLike),
            ("random", PartitionerKind::Random),
        ] {
            let p: Box<dyn Partitioner> = match kind {
                PartitionerKind::MetisLike => Box::new(MetisLike::new(ctx.seed)),
                PartitionerKind::Random => Box::new(RandomPartitioner::new(ctx.seed)),
            };
            let parts = p.partition(&w.kg, 4);
            let cut = quality::cut_fraction(&w.kg, &parts);
            let bal = quality::balance(&parts);

            let mut cfg = TrainConfig::small(SystemKind::DglKe);
            cfg.machines = 4;
            cfg.dim = 32;
            cfg.epochs = epochs;
            cfg.partitioner = kind;
            cfg.seed = ctx.seed;
            let report = train(&w.kg, &w.split.train, &[], &cfg);
            rows.push(vec![
                dataset.name().to_string(),
                label.to_string(),
                pct(cut),
                format!("{bal:.2}"),
                mb(report.total_traffic().remote_bytes),
                secs(report.total_comm_secs()),
            ]);
        }
    }
    ExperimentRecord {
        id: "partition-ablation".into(),
        title: "Graph partitioning: METIS-like vs random".into(),
        params: format!("4 partitions; DGL-KE-sim, {epochs} epochs, d=32"),
        columns: [
            "dataset",
            "partitioner",
            "edge cut",
            "balance",
            "remote MB",
            "comm time",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        shape_expectation: "METIS-like cuts fewer edges than random at comparable \
                            balance, which lowers remote traffic (the reason \
                            DGL-KE and HET-KG partition with METIS, §V)"
            .into(),
    }
}

/// Negative-sampling ablation: independent vs chunked corruption — §V's
/// complexity argument `O(b·d·(n+1))` vs `O(b·d + b·k·d/b_c)`.
pub fn negsample(ctx: ExpCtx) -> ExperimentRecord {
    let epochs = ctx.epochs(2);
    let w = Workload::new(Dataset::Fb15k, ctx.full, ctx.seed);
    let mut rows = Vec::new();
    for (label, strategy) in [
        ("independent", NegStrategy::Independent),
        ("chunked (b_c=32)", NegStrategy::Chunked { chunk_size: 32 }),
    ] {
        let mut cfg = TrainConfig::small(SystemKind::DglKe);
        cfg.machines = 4;
        cfg.dim = 32;
        cfg.epochs = epochs;
        cfg.negatives = NegConfig {
            per_positive: 8,
            strategy,
        };
        cfg.seed = ctx.seed;
        cfg.eval_candidates = Some(200);
        let report = train(&w.kg, &w.split.train, &w.eval_set, &cfg);
        rows.push(vec![
            label.to_string(),
            mb(report.total_traffic().total_bytes()),
            secs(report.total_comm_secs()),
            secs(report.total_secs()),
            format!(
                "{:.3}",
                report.final_metrics.as_ref().map_or(f64::NAN, |m| m.mrr())
            ),
        ]);
    }
    ExperimentRecord {
        id: "negsample-ablation".into(),
        title: "Negative sampling: independent vs chunked corruption".into(),
        params: format!("{} | DGL-KE-sim, 8 negatives/positive", w.describe()),
        columns: ["strategy", "MB moved", "comm time", "total time", "MRR"]
            .map(String::from)
            .to_vec(),
        rows,
        shape_expectation: "chunked corruption touches far fewer distinct entities \
                            per batch, cutting embedding traffic at equal accuracy \
                            (§V's batched negative sampling)"
            .into(),
    }
}

/// Bandwidth sensitivity: the paper's §II Remarks motivate the cache
/// "especially in a low bandwidth network environment" — sweep the link
/// speed and watch HET-KG's advantage over DGL-KE grow as bandwidth falls.
pub fn bandwidth(ctx: ExpCtx) -> ExperimentRecord {
    use hetkg_netsim::CostModel;
    let w = Workload::new(Dataset::Fb15k, ctx.full, ctx.seed);
    let epochs = ctx.epochs(3);
    let mut rows = Vec::new();
    for (label, gbps) in [("100 Mbps", 0.1), ("1 Gbps", 1.0), ("10 Gbps", 10.0)] {
        let mut times = Vec::new();
        for system in [SystemKind::DglKe, SystemKind::HetKgDps] {
            let mut cfg = TrainConfig::small(system);
            cfg.machines = 4;
            cfg.dim = 128;
            cfg.epochs = epochs;
            cfg.seed = ctx.seed;
            cfg.cost_model = CostModel {
                remote_bandwidth: gbps * 1e9 / 8.0,
                ..CostModel::gigabit()
            };
            let report = train(&w.kg, &w.split.train, &[], &cfg);
            times.push(report.total_secs());
        }
        rows.push(vec![
            label.to_string(),
            secs(times[0]),
            secs(times[1]),
            format!("{:.2}x", times[0] / times[1]),
        ]);
    }
    ExperimentRecord {
        id: "bandwidth-sweep".into(),
        title: "Cache benefit vs network bandwidth".into(),
        params: format!("{} | {epochs} epochs, d=128, 4 machines", w.describe()),
        columns: ["link", "DGL-KE", "HET-KG-D", "speedup"]
            .map(String::from)
            .to_vec(),
        rows,
        shape_expectation: "HET-KG's speedup over DGL-KE is largest on the slowest \
                            link and shrinks as bandwidth grows (§II Remarks: the \
                            cache matters most in low-bandwidth environments)"
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_sampling_moves_fewer_bytes() {
        let r = negsample(ExpCtx {
            quick: true,
            ..Default::default()
        });
        let bytes = |i: usize| r.rows[i][1].parse::<f64>().unwrap();
        assert!(
            bytes(1) < bytes(0),
            "chunked {} must beat independent {}",
            bytes(1),
            bytes(0)
        );
    }
}

//! Extra ablations for design choices DESIGN.md calls out (not paper
//! figures, but the paper's §V motivates both).

use super::ExpCtx;
use crate::record::ExperimentRecord;
use crate::render::{mb, pct, secs};
use crate::workloads::{Dataset, Workload};
use hetkg_embed::negative::{NegConfig, NegStrategy};
use hetkg_partition::{quality, MetisLike, Partitioner, RandomPartitioner};
use hetkg_train::config::PartitionerKind;
use hetkg_train::{train, SystemKind, TrainConfig};

/// Partitioner ablation: METIS-like vs random — edge cut, balance, and the
/// resulting training communication.
pub fn partition(ctx: ExpCtx) -> ExperimentRecord {
    let epochs = ctx.epochs(2);
    let mut rows = Vec::new();
    for dataset in Dataset::all() {
        let w = Workload::new(dataset, ctx.full, ctx.seed);
        for (label, kind) in [
            ("metis-like", PartitionerKind::MetisLike),
            ("random", PartitionerKind::Random),
        ] {
            let p: Box<dyn Partitioner> = match kind {
                PartitionerKind::MetisLike => Box::new(MetisLike::new(ctx.seed)),
                PartitionerKind::Random => Box::new(RandomPartitioner::new(ctx.seed)),
            };
            let parts = p.partition(&w.kg, 4);
            let cut = quality::cut_fraction(&w.kg, &parts);
            let bal = quality::balance(&parts);

            let mut cfg = TrainConfig::small(SystemKind::DglKe);
            cfg.machines = 4;
            cfg.dim = 32;
            cfg.epochs = epochs;
            cfg.partitioner = kind;
            cfg.seed = ctx.seed;
            let report = train(&w.kg, &w.split.train, &[], &cfg);
            rows.push(vec![
                dataset.name().to_string(),
                label.to_string(),
                pct(cut),
                format!("{bal:.2}"),
                mb(report.total_traffic().remote_bytes),
                secs(report.total_comm_secs()),
            ]);
        }
    }
    ExperimentRecord {
        id: "partition-ablation".into(),
        title: "Graph partitioning: METIS-like vs random".into(),
        params: format!("4 partitions; DGL-KE-sim, {epochs} epochs, d=32"),
        columns: [
            "dataset",
            "partitioner",
            "edge cut",
            "balance",
            "remote MB",
            "comm time",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        shape_expectation: "METIS-like cuts fewer edges than random at comparable \
                            balance, which lowers remote traffic (the reason \
                            DGL-KE and HET-KG partition with METIS, §V)"
            .into(),
    }
}

/// Negative-sampling ablation: independent vs chunked corruption — §V's
/// complexity argument `O(b·d·(n+1))` vs `O(b·d + b·k·d/b_c)`.
pub fn negsample(ctx: ExpCtx) -> ExperimentRecord {
    let epochs = ctx.epochs(2);
    let w = Workload::new(Dataset::Fb15k, ctx.full, ctx.seed);
    let mut rows = Vec::new();
    for (label, strategy) in [
        ("independent", NegStrategy::Independent),
        ("chunked (b_c=32)", NegStrategy::Chunked { chunk_size: 32 }),
    ] {
        let mut cfg = TrainConfig::small(SystemKind::DglKe);
        cfg.machines = 4;
        cfg.dim = 32;
        cfg.epochs = epochs;
        cfg.negatives = NegConfig {
            per_positive: 8,
            strategy,
        };
        cfg.seed = ctx.seed;
        cfg.eval_candidates = Some(200);
        let report = train(&w.kg, &w.split.train, &w.eval_set, &cfg);
        rows.push(vec![
            label.to_string(),
            mb(report.total_traffic().total_bytes()),
            secs(report.total_comm_secs()),
            secs(report.total_secs()),
            format!(
                "{:.3}",
                report.final_metrics.as_ref().map_or(f64::NAN, |m| m.mrr())
            ),
        ]);
    }
    ExperimentRecord {
        id: "negsample-ablation".into(),
        title: "Negative sampling: independent vs chunked corruption".into(),
        params: format!("{} | DGL-KE-sim, 8 negatives/positive", w.describe()),
        columns: ["strategy", "MB moved", "comm time", "total time", "MRR"]
            .map(String::from)
            .to_vec(),
        rows,
        shape_expectation: "chunked corruption touches far fewer distinct entities \
                            per batch, cutting embedding traffic at equal accuracy \
                            (§V's batched negative sampling)"
            .into(),
    }
}

/// Bandwidth sensitivity: the paper's §II Remarks motivate the cache
/// "especially in a low bandwidth network environment" — sweep the link
/// speed and watch HET-KG's advantage over DGL-KE grow as bandwidth falls.
pub fn bandwidth(ctx: ExpCtx) -> ExperimentRecord {
    use hetkg_netsim::CostModel;
    let w = Workload::new(Dataset::Fb15k, ctx.full, ctx.seed);
    let epochs = ctx.epochs(3);
    let mut rows = Vec::new();
    for (label, gbps) in [("100 Mbps", 0.1), ("1 Gbps", 1.0), ("10 Gbps", 10.0)] {
        let mut times = Vec::new();
        for system in [SystemKind::DglKe, SystemKind::HetKgDps] {
            let mut cfg = TrainConfig::small(system);
            cfg.machines = 4;
            cfg.dim = 128;
            cfg.epochs = epochs;
            cfg.seed = ctx.seed;
            cfg.cost_model = CostModel {
                remote_bandwidth: gbps * 1e9 / 8.0,
                ..CostModel::gigabit()
            };
            let report = train(&w.kg, &w.split.train, &[], &cfg);
            times.push(report.total_secs());
        }
        rows.push(vec![
            label.to_string(),
            secs(times[0]),
            secs(times[1]),
            format!("{:.2}x", times[0] / times[1]),
        ]);
    }
    ExperimentRecord {
        id: "bandwidth-sweep".into(),
        title: "Cache benefit vs network bandwidth".into(),
        params: format!("{} | {epochs} epochs, d=128, 4 machines", w.describe()),
        columns: ["link", "DGL-KE", "HET-KG-D", "speedup"]
            .map(String::from)
            .to_vec(),
        rows,
        shape_expectation: "HET-KG's speedup over DGL-KE is largest on the slowest \
                            link and shrinks as bandwidth grows (§II Remarks: the \
                            cache matters most in low-bandwidth environments)"
            .into(),
    }
}

/// Push-compression ablation: dense f32 pushes vs int8/int4 quantization,
/// top-k sparsification, and the adaptive ladder — metered push-lane bytes
/// saved vs final MRR, with error feedback keeping the lossy modes honest.
pub fn compression(ctx: ExpCtx) -> ExperimentRecord {
    use hetkg_netsim::CompressionMode;
    let epochs = ctx.epochs(4);
    let w = Workload::new(Dataset::Fb15k, ctx.full, ctx.seed);
    let mut rows = Vec::new();
    for mode in [
        CompressionMode::Off,
        CompressionMode::Int8,
        CompressionMode::Int4,
        CompressionMode::TopK,
        CompressionMode::Adaptive,
    ] {
        let mut cfg = TrainConfig::small(SystemKind::HetKgDps);
        cfg.machines = 4;
        cfg.dim = 32;
        cfg.epochs = epochs;
        cfg.seed = ctx.seed;
        // Rank against every entity: candidate subsampling noise at this
        // scale would swamp the small accuracy deltas the ablation measures.
        cfg.eval_candidates = Some(w.kg.num_entities());
        cfg.compression = mode;
        let report = train(&w.kg, &w.split.train, &w.eval_set, &cfg);
        let t = report.total_traffic();
        let ratio = if t.push_wire_bytes > 0 {
            t.push_raw_bytes as f64 / t.push_wire_bytes as f64
        } else {
            1.0
        };
        rows.push(vec![
            mode.as_str().to_string(),
            mb(t.push_raw_bytes),
            mb(t.push_wire_bytes),
            format!("{ratio:.2}x"),
            secs(report.total_comm_secs()),
            format!(
                "{:.4}",
                report.final_metrics.as_ref().map_or(f64::NAN, |m| m.mrr())
            ),
        ]);
    }
    ExperimentRecord {
        id: "compression-ablation".into(),
        title: "Push compression: bytes saved vs accuracy".into(),
        params: format!("{} | HET-KG-D, {epochs} epochs, d=32", w.describe()),
        columns: [
            "mode",
            "push raw MB",
            "push wire MB",
            "ratio",
            "comm time",
            "MRR",
        ]
        .map(String::from)
        .to_vec(),
        rows,
        shape_expectation: "int8 and top-k cut metered push-lane bytes at least 3x \
                            while error feedback holds final MRR within a few \
                            percent of the dense run (GreenDyGNN-style adaptive \
                            communication, PAPERS.md)"
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_sampling_moves_fewer_bytes() {
        let r = negsample(ExpCtx {
            quick: true,
            ..Default::default()
        });
        let bytes = |i: usize| r.rows[i][1].parse::<f64>().unwrap();
        assert!(
            bytes(1) < bytes(0),
            "chunked {} must beat independent {}",
            bytes(1),
            bytes(0)
        );
    }

    #[test]
    fn compression_cuts_push_bytes_3x_at_near_equal_mrr() {
        // The PR acceptance bar on the fb15k workload: int8 and top-k each
        // cut metered push-lane bytes at least 3x, and the adaptive
        // int8+top-k ladder holds final MRR within 2% relative of the
        // dense run. (Dense MRR itself swings ~3% seed to seed at harness
        // scale, so the fixed lossy modes get a looser catastrophic-loss
        // guard instead of the 2% bar; the simulator is deterministic, so
        // none of these assertions are flaky.)
        let r = compression(ExpCtx {
            quick: true,
            ..Default::default()
        });
        let row = |mode: &str| {
            r.rows
                .iter()
                .find(|row| row[0] == mode)
                .unwrap_or_else(|| panic!("no {mode} row"))
        };
        let ratio = |mode: &str| {
            let cell = &row(mode)[3];
            cell.trim_end_matches('x').parse::<f64>().unwrap()
        };
        let mrr = |mode: &str| row(mode)[5].parse::<f64>().unwrap();
        let dense = mrr("off");
        assert!(dense.is_finite() && dense > 0.0);
        let rel = |mode: &str| (mrr(mode) - dense).abs() / dense;
        for mode in ["int8", "topk", "adaptive"] {
            assert!(
                ratio(mode) >= 3.0,
                "{mode} push-lane cut {:.2}x is under the 3x bar",
                ratio(mode)
            );
            assert!(
                rel(mode) <= 0.10,
                "{mode} MRR {} collapsed {:.1}% from dense {}",
                mrr(mode),
                100.0 * rel(mode),
                dense
            );
        }
        assert!(
            rel("adaptive") <= 0.02,
            "adaptive MRR {} drifted {:.1}% from dense {}",
            mrr("adaptive"),
            100.0 * rel("adaptive"),
            dense
        );
        // The dense baseline ships raw == wire: ratio exactly 1.
        assert_eq!(ratio("off"), 1.0);
    }
}

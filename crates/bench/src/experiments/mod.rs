//! One function per table/figure of the paper's evaluation section.
//!
//! Every experiment prints a rendered table and returns an
//! [`ExperimentRecord`](crate::record::ExperimentRecord) the binary saves to
//! `experiments/<id>.json`. Absolute numbers differ from the paper (the
//! substrate is a simulator at harness scale); each record carries the
//! *shape expectation* that should hold.

pub mod ablations;
pub mod accuracy;
pub mod cache;
pub mod efficiency;
pub mod motivation;

use crate::record::ExperimentRecord;

/// Shared experiment context.
#[derive(Debug, Clone, Copy)]
pub struct ExpCtx {
    /// Use published dataset sizes instead of harness scale (slow).
    pub full: bool,
    /// Master seed.
    pub seed: u64,
    /// Shrink epoch counts for smoke runs.
    pub quick: bool,
}

impl Default for ExpCtx {
    fn default() -> Self {
        Self {
            full: false,
            seed: 42,
            quick: false,
        }
    }
}

impl ExpCtx {
    /// Epoch count: the experiment's default, clamped for `--quick` runs.
    pub fn epochs(&self, default: usize) -> usize {
        if self.quick {
            default.min(2)
        } else {
            default
        }
    }
}

/// All experiment ids, in paper order (used by `repro all` and `--list`).
pub const ALL: &[&str] = &[
    "table1",
    "fig2",
    "table3",
    "table4",
    "table5",
    "fig5",
    "fig6",
    "fig7",
    "fig8a",
    "fig8b",
    "fig8c",
    "fig9",
    "table6",
    "table7",
    "partition-ablation",
    "negsample-ablation",
    "divergence",
    "bandwidth-sweep",
    "compression-ablation",
];

/// Run one experiment by id.
pub fn run(id: &str, ctx: ExpCtx) -> Option<ExperimentRecord> {
    let record = match id {
        "table1" => motivation::table1(ctx),
        "fig2" => motivation::fig2(ctx),
        "table3" => accuracy::table3(ctx),
        "table4" => accuracy::table4(ctx),
        "table5" => accuracy::table5(ctx),
        "fig5" => efficiency::fig5(ctx),
        "fig6" => efficiency::fig6(ctx),
        "fig7" => efficiency::fig7(ctx),
        "fig8a" => cache::fig8a(ctx),
        "fig8b" => cache::fig8b(ctx),
        "fig8c" => cache::fig8c(ctx),
        "fig9" => cache::fig9(ctx),
        "table6" => cache::table6(ctx),
        "table7" => cache::table7(ctx),
        "partition-ablation" => ablations::partition(ctx),
        "negsample-ablation" => ablations::negsample(ctx),
        "divergence" => cache::divergence(ctx),
        "bandwidth-sweep" => ablations::bandwidth(ctx),
        "compression-ablation" => ablations::compression(ctx),
        _ => return None,
    };
    Some(record)
}

/// Print a record's table and shape note to stdout.
pub fn print_record(r: &ExperimentRecord) {
    println!("== {} — {} ==", r.id, r.title);
    if !r.params.is_empty() {
        println!("{}", r.params);
    }
    println!();
    print!("{}", crate::render::table(&r.columns, &r.rows));
    println!("\nshape: {}\n", r.shape_expectation);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_returns_none() {
        assert!(run("not-an-experiment", ExpCtx::default()).is_none());
    }

    #[test]
    fn quick_clamps_epochs() {
        let ctx = ExpCtx {
            quick: true,
            ..Default::default()
        };
        assert_eq!(ctx.epochs(30), 2);
        let ctx = ExpCtx::default();
        assert_eq!(ctx.epochs(30), 30);
    }

    #[test]
    fn all_ids_are_known() {
        // Dispatch must recognize every listed id (run with quick to keep
        // this cheap is NOT done here — we only check the match arms exist
        // by name, which `run` does before executing; instead just assert
        // the list is non-empty and unique).
        let mut ids: Vec<&&str> = ALL.iter().collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), ALL.len());
    }
}

//! `repro` — regenerate every table and figure of the HET-KG paper.
//!
//! ```text
//! repro <experiment-id> [--full] [--quick] [--seed N]
//! repro all [--quick]            # run everything, in paper order
//! repro --list                   # list experiment ids
//! ```
//!
//! Results print as text tables and are also saved as JSON under
//! `experiments/` for EXPERIMENTS.md.

use hetkg_bench::experiments::{self, ExpCtx, ALL};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for id in ALL {
            println!("{id}");
        }
        return;
    }
    let mut ctx = ExpCtx::default();
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => ctx.full = true,
            "--quick" => ctx.quick = true,
            "--seed" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--seed needs a value");
                    std::process::exit(2);
                });
                ctx.seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("--seed needs an integer, got {v:?}");
                    std::process::exit(2);
                });
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.iter().any(|i| i == "all") {
        ids = ALL.iter().map(|s| s.to_string()).collect();
    }
    if ids.is_empty() {
        usage();
        std::process::exit(2);
    }
    let mut failed = false;
    for id in &ids {
        match experiments::run(id, ctx) {
            Some(record) => {
                experiments::print_record(&record);
                match record.save() {
                    Ok(path) => println!("saved {}\n", path.display()),
                    Err(e) => eprintln!("could not save record for {id}: {e}"),
                }
            }
            None => {
                eprintln!("unknown experiment {id:?}; try --list");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn usage() {
    println!("repro — regenerate the HET-KG paper's tables and figures\n");
    println!("usage: repro <experiment-id>... [--full] [--quick] [--seed N]");
    println!("       repro all [--quick]");
    println!("       repro --list\n");
    println!("experiments (paper order):");
    for id in ALL {
        println!("  {id}");
    }
    println!("\nflags:");
    println!("  --full   published dataset sizes (slow; Freebase stays 1/86-scaled)");
    println!("  --quick  clamp epochs to 2 for smoke runs");
    println!("  --seed N master seed (default 42)");
}

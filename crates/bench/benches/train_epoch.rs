//! Criterion system-level benchmark: one training epoch per system on the
//! same workload. Wall time here measures the *implementation's* speed
//! (sampling + kernels + PS data path); the simulated cluster times come
//! from the `repro` harness instead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetkg_kgraph::generator::SyntheticKg;
use hetkg_kgraph::split::Split;
use hetkg_train::{train, SystemKind, TrainConfig};
use std::hint::black_box;

fn bench_epoch(c: &mut Criterion) {
    let kg = SyntheticKg {
        num_entities: 2_000,
        num_relations: 40,
        num_triples: 10_000,
        ..Default::default()
    }
    .build(7);
    let split = Split::ninety_five_five(&kg, 7);

    let mut group = c.benchmark_group("train_epoch");
    group.sample_size(10);
    for system in [
        SystemKind::DglKe,
        SystemKind::HetKgCps,
        SystemKind::HetKgDps,
        SystemKind::Pbg,
    ] {
        group.bench_function(BenchmarkId::from_parameter(system), |b| {
            b.iter(|| {
                let mut cfg = TrainConfig::small(system);
                cfg.epochs = 1;
                cfg.dim = 32;
                cfg.machines = 2;
                cfg.eval_candidates = None;
                black_box(train(&kg, &split.train, &[], &cfg))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_epoch);
criterion_main!(benches);

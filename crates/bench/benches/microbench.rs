//! Criterion micro-benchmarks for the performance-critical building blocks:
//! score functions, the batch kernel, cache operations, PS push/pull, and
//! the partitioner.
//!
//! Run with `cargo bench -p hetkg-bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetkg_core::baselines::{FifoCache, LfuCache, LruCache, ReplacementCache};
use hetkg_core::filter::{filter_hot_set, FilterConfig};
use hetkg_core::table::HotEmbeddingTable;
use hetkg_embed::init::Init;
use hetkg_embed::ModelKind;
use hetkg_kgraph::generator::{SyntheticKg, ZipfSampler};
use hetkg_kgraph::{KeySpace, KnowledgeGraph, ParamKey};
use hetkg_netsim::{ClusterTopology, TrafficMeter};
use hetkg_partition::{MetisLike, Partitioner, RandomPartitioner};
use hetkg_ps::optimizer::AdaGrad;
use hetkg_ps::{KvStore, PsClient, PsScratch, ShardRouter};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_score");
    let dim = 128;
    let mut rng = StdRng::seed_from_u64(1);
    for kind in [
        ModelKind::TransEL2,
        ModelKind::DistMult,
        ModelKind::ComplEx,
        ModelKind::TransH,
    ] {
        let model = kind.build(dim);
        let h: Vec<f32> = (0..model.entity_dim())
            .map(|_| rng.random_range(-0.5..0.5))
            .collect();
        let r: Vec<f32> = (0..model.relation_dim())
            .map(|_| rng.random_range(-0.5..0.5))
            .collect();
        let t: Vec<f32> = (0..model.entity_dim())
            .map(|_| rng.random_range(-0.5..0.5))
            .collect();
        group.bench_function(BenchmarkId::new("score", kind.to_string()), |b| {
            b.iter(|| black_box(model.score(black_box(&h), black_box(&r), black_box(&t))))
        });
        let mut gh = vec![0.0f32; h.len()];
        let mut gr = vec![0.0f32; r.len()];
        let mut gt = vec![0.0f32; t.len()];
        group.bench_function(BenchmarkId::new("grad", kind.to_string()), |b| {
            b.iter(|| {
                model.grad(&h, &r, &t, 1.0, &mut gh, &mut gr, &mut gt);
                black_box(gh[0])
            })
        });
    }
    group.finish();
}

fn bench_cache_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_table");
    let ks = KeySpace::new(100_000, 1_000);
    let mut table = HotEmbeddingTable::new(ks, 4_000, 1_000, 64, 64, 1);
    let row = vec![0.5f32; 64];
    for k in 0..4_000u64 {
        table.insert(ParamKey(k), &row).unwrap();
    }
    group.throughput(Throughput::Elements(1));
    group.bench_function("get_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4_000;
            black_box(table.get(ParamKey(i)))
        })
    });
    group.bench_function("get_miss", |b| {
        b.iter(|| black_box(table.get(ParamKey(99_999))))
    });
    group.bench_function("apply_grad", |b| {
        let opt = AdaGrad::new(0.1);
        let g = vec![0.01f32; 64];
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4_000;
            black_box(table.apply_grad(ParamKey(i), &g, &opt))
        })
    });
    group.finish();
}

fn bench_replacement_caches(c: &mut Criterion) {
    let mut group = c.benchmark_group("replacement_cache");
    let z = ZipfSampler::new(50_000, 1.0);
    let mut rng = StdRng::seed_from_u64(3);
    let trace: Vec<ParamKey> = (0..100_000)
        .map(|_| ParamKey(z.sample(&mut rng) as u64))
        .collect();
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("fifo", |b| {
        b.iter(|| {
            let mut cache = FifoCache::new(1_000);
            for &k in &trace {
                black_box(cache.access(k));
            }
        })
    });
    group.bench_function("lru", |b| {
        b.iter(|| {
            let mut cache = LruCache::new(1_000);
            for &k in &trace {
                black_box(cache.access(k));
            }
        })
    });
    group.bench_function("lfu", |b| {
        b.iter(|| {
            let mut cache = LfuCache::new(1_000);
            for &k in &trace {
                black_box(cache.access(k));
            }
        })
    });
    group.finish();
}

fn bench_filter(c: &mut Criterion) {
    let ks = KeySpace::new(100_000, 2_000);
    let z = ZipfSampler::new(102_000, 1.0);
    let mut rng = StdRng::seed_from_u64(5);
    let accesses: Vec<ParamKey> = (0..200_000)
        .map(|_| ParamKey(z.sample(&mut rng) as u64))
        .collect();
    let cfg = FilterConfig::paper_default(2_000);
    c.bench_function("filter_hot_set_200k", |b| {
        b.iter(|| black_box(filter_hot_set(&accesses, ks, &cfg)))
    });
}

fn ps_setup(shards: usize) -> (Arc<KvStore>, PsClient) {
    let ks = KeySpace::new(50_000, 500);
    let router = ShardRouter::round_robin(ks, shards);
    let store = Arc::new(KvStore::new(router, 64, 64, 1, Init::Xavier, 1));
    let meter = Arc::new(TrafficMeter::new());
    let client = PsClient::new(0, ClusterTopology::new(shards, 1), store.clone(), meter);
    (store, client)
}

fn bench_ps(c: &mut Criterion) {
    let mut group = c.benchmark_group("parameter_server");
    let keys: Vec<ParamKey> = (0..256).map(|i| ParamKey(i * 7)).collect();
    let grad = vec![0.01f32; 64];
    let grads: Vec<&[f32]> = keys.iter().map(|_| grad.as_slice()).collect();
    let opt = AdaGrad::new(0.1);
    group.throughput(Throughput::Elements(keys.len() as u64));
    for shards in [1usize, 4, 16] {
        let (_store, client) = ps_setup(shards);
        let mut scratch = PsScratch::new();
        group.bench_function(
            BenchmarkId::new("pull_batch_256", format!("{shards}sh")),
            |b| {
                b.iter(|| {
                    let mut acc = 0.0f32;
                    client.pull_batch_with(&keys, &mut scratch, |_, row| acc += row[0]);
                    black_box(acc)
                })
            },
        );
        group.bench_function(
            BenchmarkId::new("push_batch_256", format!("{shards}sh")),
            |b| b.iter(|| client.push_batch_with(&keys, &grads, &opt, &mut scratch)),
        );
        // Allocating convenience path, for before/after comparison.
        group.bench_function(
            BenchmarkId::new("pull_batch_256_alloc", format!("{shards}sh")),
            |b| {
                b.iter(|| {
                    let mut acc = 0.0f32;
                    client.pull_batch(&keys, |_, row| acc += row[0]);
                    black_box(acc)
                })
            },
        );
    }
    // Contended: two background workers hammer the same 4-shard store with
    // batched gradient pushes while the measured worker pulls/pushes. This
    // is where lock-once-per-shard pays: per-key locking would interleave
    // 256 acquire/release cycles with the writers.
    {
        let (store, client) = ps_setup(4);
        let mut scratch = PsScratch::new();
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..2u64)
            .map(|t| {
                let store = store.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let opt = AdaGrad::new(0.1);
                    let bg_keys: Vec<ParamKey> = (0..256)
                        .map(|i| ParamKey((i * 11 + t * 131) % 50_000))
                        .collect();
                    let g = vec![0.01f32; 64];
                    let bg_grads: Vec<&[f32]> = bg_keys.iter().map(|_| g.as_slice()).collect();
                    while !stop.load(Ordering::Relaxed) {
                        store.push_grad_many(&bg_keys, &bg_grads, &opt);
                    }
                })
            })
            .collect();
        group.bench_function("pull_batch_256_contended/4sh", |b| {
            b.iter(|| {
                let mut acc = 0.0f32;
                client.pull_batch_with(&keys, &mut scratch, |_, row| acc += row[0]);
                black_box(acc)
            })
        });
        group.bench_function("push_batch_256_contended/4sh", |b| {
            b.iter(|| client.push_batch_with(&keys, &grads, &opt, &mut scratch))
        });
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }
    group.finish();
}

fn bench_capture(c: &mut Criterion) {
    // Snapshot / checkpoint capture walk every row shard-at-a-time; they run
    // between epochs, so their cost is wall-clock overhead on every run.
    let mut group = c.benchmark_group("capture");
    group.sample_size(20);
    let ks = KeySpace::new(50_000, 500);
    let router = ShardRouter::round_robin(ks, 4);
    let store = KvStore::new(router, 64, 64, 1, Init::Xavier, 1);
    group.bench_function("snapshot_50k_rows", |b| {
        b.iter(|| black_box(hetkg_train::trainer::snapshot(&store, ks)))
    });
    group.bench_function("checkpoint_v2_50k_rows", |b| {
        b.iter(|| {
            black_box(hetkg_train::trainer::checkpoint_v2(
                &store, ks, 3, "adagrad",
            ))
        })
    });
    group.finish();
}

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioner");
    group.sample_size(10);
    let g: KnowledgeGraph = SyntheticKg {
        num_entities: 5_000,
        num_relations: 50,
        num_triples: 40_000,
        ..Default::default()
    }
    .build(1);
    group.bench_function("metis_like_4way_40k_edges", |b| {
        b.iter(|| black_box(MetisLike::new(1).partition(&g, 4)))
    });
    group.bench_function("random_4way_40k_edges", |b| {
        b.iter(|| black_box(RandomPartitioner::new(1).partition(&g, 4)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_models,
    bench_cache_ops,
    bench_replacement_caches,
    bench_filter,
    bench_ps,
    bench_capture,
    bench_partitioners
);
criterion_main!(benches);

//! Criterion benchmark: pipelined vs sequential iteration scheduling on a
//! 4-shard workload. Wall time here measures the *implementation* cost of
//! the pipeline (staging bookkeeping, split pulls, timeline posting) — the
//! simulated-time gain it buys is reported by `scripts/bench_pipeline.sh`,
//! which emits `BENCH_pipeline.json` from the same workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetkg_kgraph::generator::SyntheticKg;
use hetkg_kgraph::split::Split;
use hetkg_train::{train, SystemKind, TrainConfig};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let kg = SyntheticKg {
        num_entities: 4_000,
        num_relations: 24,
        num_triples: 8_000,
        ..Default::default()
    }
    .build(11);
    let split = Split::ninety_five_five(&kg, 11);

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for system in [SystemKind::HetKgCps, SystemKind::DglKe] {
        for overlap in [true, false] {
            let label = if overlap { "pipelined" } else { "sequential" };
            group.bench_function(BenchmarkId::new(label, system), |b| {
                b.iter(|| {
                    let mut cfg = TrainConfig::small(system);
                    cfg.epochs = 1;
                    cfg.dim = 32;
                    cfg.machines = 4;
                    cfg.batch_size = 16;
                    cfg.eval_candidates = None;
                    cfg.overlap = overlap;
                    black_box(train(&kg, &split.train, &[], &cfg))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);

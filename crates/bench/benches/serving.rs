//! Criterion benchmark: the serving read path. Blocked vs scalar top-k
//! (the kernel win), and cached vs uncached point lookups (the admission
//! cache win). The aggregate serving picture — QPS, tails, thread
//! scaling — is reported by `scripts/bench_serving.sh`, which emits
//! `BENCH_serving.json` from a bigger workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetkg_embed::checkpoint::Checkpoint;
use hetkg_embed::init::Init;
use hetkg_embed::models::ModelKind;
use hetkg_embed::storage::EmbeddingTable;
use hetkg_serve::{ServeEngine, ServingSnapshot, SnapshotCell};
use std::hint::black_box;
use std::sync::Arc;

const ENTITIES: usize = 8_000;
const DIM: usize = 64;

fn engine(kind: ModelKind, cache_rows: usize) -> ServeEngine {
    let model = kind.build(DIM);
    let mut entities = EmbeddingTable::zeros(ENTITIES, model.entity_dim());
    let mut relations = EmbeddingTable::zeros(8, model.relation_dim());
    Init::Uniform { bound: 0.5 }.fill(&mut entities, 3);
    Init::Uniform { bound: 0.5 }.fill(&mut relations, 4);
    let ck = Checkpoint::new(entities, relations);
    let cell = Arc::new(SnapshotCell::new(ServingSnapshot::from_checkpoint(
        &ck, 0, 0, 4,
    )));
    ServeEngine::new(cell, model, cache_rows).expect("dims match")
}

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_topk");
    group.sample_size(10);
    for kind in [ModelKind::TransEL2, ModelKind::DistMult] {
        let eng = engine(kind, 0);
        let mut scratch = eng.scratch();
        group.bench_function(BenchmarkId::new("batched", kind), |b| {
            let mut h = 0u32;
            b.iter(|| {
                h = (h + 17) % ENTITIES as u32;
                black_box(eng.topk_tails(&mut scratch, h, 1, 10).unwrap())
            })
        });
        group.bench_function(BenchmarkId::new("scalar", kind), |b| {
            let mut h = 0u32;
            b.iter(|| {
                h = (h + 17) % ENTITIES as u32;
                black_box(eng.topk_tails_scalar(&mut scratch, h, 1, 10).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_lookup");
    let eng = engine(ModelKind::TransEL2, 1024);
    let mut row = Vec::new();
    // Drive one id hot so the cached case measures a hit.
    for _ in 0..4 {
        eng.lookup_entity(7, &mut row).unwrap();
    }
    group.bench_function("cache_hit", |b| {
        b.iter(|| black_box(eng.lookup_entity(7, &mut row).is_ok()))
    });
    group.bench_function("cache_miss_cold_tail", |b| {
        let mut id = 2_000u32;
        b.iter(|| {
            // Walk the cold tail so frequencies stay below the admission
            // threshold and every access misses.
            id = 2_000 + (id + 1) % 6_000;
            black_box(eng.lookup_entity(id, &mut row).is_ok())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_topk, bench_lookup);
criterion_main!(benches);

//! Cross-crate integration tests: the full pipeline from synthetic graph
//! through partitioning, distributed training, caching, and evaluation.

use het_kg::prelude::*;

fn workload() -> (KnowledgeGraph, Split) {
    let kg = SyntheticKg {
        num_entities: 200,
        num_relations: 12,
        num_triples: 1_500,
        ..Default::default()
    }
    .build(7);
    let split = Split::ninety_five_five(&kg, 7);
    (kg, split)
}

#[test]
fn full_pipeline_hetkg_dps() {
    let (kg, split) = workload();
    let mut cfg = TrainConfig::small(SystemKind::HetKgDps);
    cfg.epochs = 4;
    cfg.eval_candidates = Some(50);
    let eval: Vec<Triple> = split.valid.iter().copied().take(30).collect();
    let report = train(&kg, &split.train, &eval, &cfg);

    assert_eq!(report.epochs.len(), 4);
    assert!(
        report.total_cache().hit_ratio() > 0.0,
        "cache must serve hits"
    );
    assert!(report.final_metrics.is_some());
    assert!(report.epochs.last().unwrap().loss < report.epochs[0].loss + 1e-9);
}

#[test]
fn all_systems_agree_on_workload_and_rank_better_than_chance() {
    let (kg, split) = workload();
    let eval: Vec<Triple> = split.valid.iter().copied().take(30).collect();
    for system in [
        SystemKind::DglKe,
        SystemKind::HetKgCps,
        SystemKind::HetKgDps,
        SystemKind::Pbg,
    ] {
        let mut cfg = TrainConfig::small(system);
        cfg.epochs = 6;
        cfg.eval_candidates = Some(100);
        let report = train(&kg, &split.train, &eval, &cfg);
        let m = report.final_metrics.as_ref().unwrap();
        // Chance MRR against ~100 candidates is ≈ ln(100)/100 ≈ 0.05.
        assert!(
            m.mrr() > 0.05,
            "{system}: MRR {} not better than chance",
            m.mrr()
        );
    }
}

#[test]
fn communication_ordering_matches_paper() {
    // The headline result end-to-end: HET-KG < DGL-KE < PBG on bytes moved.
    // PBG's pathology (bucket swapping + dense relation weights) needs the
    // paper's regime — a sparse graph (entity count × partitions > triples)
    // with a real relation vocabulary; on tiny dense graphs PBG's block
    // design is genuinely cheap.
    let kg = SyntheticKg {
        num_entities: 800,
        num_relations: 80,
        num_triples: 2_500,
        ..Default::default()
    }
    .build(7);
    let split = Split::ninety_five_five(&kg, 7);
    let mut bytes = std::collections::HashMap::new();
    for system in [SystemKind::DglKe, SystemKind::HetKgCps, SystemKind::Pbg] {
        let mut cfg = TrainConfig::small(system);
        cfg.epochs = 3;
        cfg.machines = 4;
        let report = train(&kg, &split.train, &[], &cfg);
        bytes.insert(format!("{system}"), report.total_traffic().total_bytes());
    }
    assert!(
        bytes["HET-KG-C"] < bytes["DGL-KE"],
        "HET-KG {} vs DGL-KE {}",
        bytes["HET-KG-C"],
        bytes["DGL-KE"]
    );
    assert!(
        bytes["DGL-KE"] < bytes["PBG"],
        "DGL-KE {} vs PBG {}",
        bytes["DGL-KE"],
        bytes["PBG"]
    );
}

#[test]
fn metis_partitioning_reduces_remote_traffic_vs_random() {
    let kg = SyntheticKg {
        num_entities: 600,
        num_relations: 10,
        num_triples: 5_000,
        ..Default::default()
    }
    .build(3);
    let split = Split::ninety_five_five(&kg, 3);
    let run = |partitioner| {
        let mut cfg = TrainConfig::small(SystemKind::DglKe);
        cfg.epochs = 2;
        cfg.machines = 4;
        cfg.partitioner = partitioner;
        train(&kg, &split.train, &[], &cfg)
            .total_traffic()
            .remote_bytes
    };
    let metis = run(het_kg::train_sys::config::PartitionerKind::MetisLike);
    let random = run(het_kg::train_sys::config::PartitionerKind::Random);
    assert!(metis < random, "metis {metis} must beat random {random}");
}

#[test]
fn snapshot_evaluation_is_consistent_with_training_eval() {
    // Evaluating a snapshot by hand must agree with the trainer's built-in
    // final evaluation.
    let (kg, split) = workload();
    let mut cfg = TrainConfig::small(SystemKind::DglKe);
    cfg.epochs = 2;
    cfg.eval_candidates = Some(60);
    let eval: Vec<Triple> = split.valid.iter().copied().take(20).collect();
    let report = train(&kg, &split.train, &eval, &cfg);
    let builtin = report.final_metrics.unwrap();
    assert!(builtin.count() > 0);
    assert!(builtin.mrr() > 0.0);
}

#[test]
fn every_model_kind_trains_distributed() {
    let (kg, split) = workload();
    for model in ModelKind::all() {
        let mut cfg = TrainConfig::small(SystemKind::HetKgCps);
        cfg.model = model;
        cfg.dim = 8; // TransR relation rows are d+d² wide; keep it small
        cfg.epochs = 1;
        let report = train(&kg, &split.train, &[], &cfg);
        assert!(
            report.epochs[0].loss.is_finite(),
            "{model}: loss must be finite"
        );
        assert!(report.epochs[0].loss > 0.0, "{model}");
    }
}

#[test]
fn multiple_workers_per_machine_train_and_share_shards() {
    let (kg, split) = workload();
    let mut cfg = TrainConfig::small(SystemKind::HetKgDps);
    cfg.machines = 2;
    cfg.workers_per_machine = 2; // 4 workers, 2 PS shards
    cfg.epochs = 3;
    cfg.eval_candidates = Some(50);
    let eval: Vec<Triple> = split.valid.iter().copied().take(20).collect();
    let report = train(&kg, &split.train, &eval, &cfg);
    assert_eq!(report.epochs.len(), 3);
    assert!(report.final_metrics.is_some());
    let t = report.total_traffic();
    // Workers co-located with a shard use shared memory; the rest is remote.
    assert!(t.local_bytes > 0);
    assert!(t.remote_bytes > 0);
    assert!(report.total_cache().hit_ratio() > 0.0);
}

#[test]
fn margin_ranking_loss_trains_too() {
    let (kg, split) = workload();
    let mut cfg = TrainConfig::small(SystemKind::HetKgCps);
    cfg.loss = LossKind::MarginRanking { gamma: 4.0 };
    cfg.epochs = 5;
    let report = train(&kg, &split.train, &[], &cfg);
    assert!(report.epochs[0].loss > 0.0, "margin loss must start active");
    assert!(
        report.epochs.last().unwrap().loss < report.epochs[0].loss,
        "margin loss must fall: {} -> {}",
        report.epochs[0].loss,
        report.epochs.last().unwrap().loss
    );
}

#[test]
fn traffic_is_deterministic_across_runs() {
    let (kg, split) = workload();
    let cfg = TrainConfig::small(SystemKind::HetKgDps);
    let a = train(&kg, &split.train, &[], &cfg).total_traffic();
    let b = train(&kg, &split.train, &[], &cfg).total_traffic();
    assert_eq!(a, b);
}

#[test]
fn staleness_one_tracks_global_model_closely() {
    // With P = 1 the cache refreshes every iteration: training quality must
    // match the cacheless baseline almost exactly (same seed, same data).
    let (kg, split) = workload();
    let eval: Vec<Triple> = split.valid.iter().copied().take(30).collect();
    let mut het = TrainConfig::small(SystemKind::HetKgCps);
    het.cache.staleness = 1;
    het.epochs = 4;
    het.eval_candidates = Some(80);
    let het_report = train(&kg, &split.train, &eval, &het);

    let mut dgl = TrainConfig::small(SystemKind::DglKe);
    dgl.epochs = 4;
    dgl.eval_candidates = Some(80);
    let dgl_report = train(&kg, &split.train, &eval, &dgl);

    let h = het_report.final_metrics.unwrap().mrr();
    let d = dgl_report.final_metrics.unwrap().mrr();
    assert!(
        (h - d).abs() < 0.2,
        "P=1 HET-KG ({h}) should track DGL-KE ({d})"
    );
}

//! Property-based tests (proptest) over the public API's core invariants.

use het_kg::hotcache::baselines::{replay, FifoCache, LfuCache, LruCache, ReplacementCache};
use het_kg::hotcache::filter::{filter_hot_set, FilterConfig};
use het_kg::prelude::*;
use proptest::prelude::*;

fn arb_triples(
    entities: u32,
    relations: u32,
    max_len: usize,
) -> impl Strategy<Value = Vec<Triple>> {
    prop::collection::vec(
        (0..entities, 0..relations, 0..entities).prop_map(|(h, r, t)| Triple::new(h, r, t)),
        1..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The filter never selects more than the capacity, never duplicates,
    /// and only selects keys that were actually accessed.
    #[test]
    fn filter_respects_capacity_and_provenance(
        triples in arb_triples(50, 5, 200),
        capacity in 0usize..40,
        entity_fraction in 0.0f64..1.0,
        aware in any::<bool>(),
    ) {
        let ks = KeySpace::new(50, 5);
        let accesses: Vec<ParamKey> = triples
            .iter()
            .flat_map(|t| [ks.entity_key(t.head), ks.relation_key(t.relation), ks.entity_key(t.tail)])
            .collect();
        let cfg = FilterConfig { capacity, entity_fraction, heterogeneity_aware: aware };
        let hot = filter_hot_set(&accesses, ks, &cfg);
        prop_assert!(hot.len() <= capacity);
        let keys: Vec<ParamKey> = hot.keys().collect();
        let mut dedup = keys.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), keys.len(), "no duplicates");
        for k in keys {
            prop_assert!(accesses.contains(&k), "{} was never accessed", k);
        }
    }

    /// Replacement caches never exceed capacity, and replay accounts every
    /// access as exactly one hit or miss.
    #[test]
    fn caches_bound_residency(
        accesses in prop::collection::vec(0u64..100, 1..500),
        capacity in 0usize..50,
    ) {
        let trace: Vec<ParamKey> = accesses.iter().map(|&k| ParamKey(k)).collect();
        let caches: Vec<Box<dyn ReplacementCache>> = vec![
            Box::new(FifoCache::new(capacity)),
            Box::new(LruCache::new(capacity)),
            Box::new(LfuCache::new(capacity)),
        ];
        for mut cache in caches {
            let stats = replay(cache.as_mut(), &trace);
            prop_assert_eq!(stats.total() as usize, trace.len());
            prop_assert!(cache.len() <= capacity);
        }
    }

    /// An infinite-capacity cache's misses equal the number of distinct keys
    /// (compulsory misses only) for every policy.
    #[test]
    fn infinite_capacity_has_only_compulsory_misses(
        accesses in prop::collection::vec(0u64..60, 1..300),
    ) {
        let trace: Vec<ParamKey> = accesses.iter().map(|&k| ParamKey(k)).collect();
        let distinct = {
            let mut v = accesses.clone();
            v.sort_unstable();
            v.dedup();
            v.len() as u64
        };
        for mut cache in [
            Box::new(FifoCache::new(1000)) as Box<dyn ReplacementCache>,
            Box::new(LruCache::new(1000)),
            Box::new(LfuCache::new(1000)),
        ] {
            let stats = replay(cache.as_mut(), &trace);
            prop_assert_eq!(stats.misses, distinct);
        }
    }

    /// Graph splits are exhaustive and disjoint for any fractions.
    #[test]
    fn splits_partition_triples(
        triples in arb_triples(30, 3, 150),
        train_frac in 0.1f64..0.9,
        seed in any::<u64>(),
    ) {
        let kg = KnowledgeGraph::new(30, 3, triples.clone()).unwrap();
        let valid_frac = (1.0 - train_frac) / 2.0;
        let split = Split::new(&kg, train_frac, valid_frac, seed);
        let mut all: Vec<Triple> = split.train.clone();
        all.extend_from_slice(&split.valid);
        all.extend_from_slice(&split.test);
        all.sort();
        let mut orig = triples;
        orig.sort();
        prop_assert_eq!(all, orig);
    }

    /// Partitionings assign every entity to a valid part, and every triple's
    /// home is its head's part.
    #[test]
    fn partitioner_assignments_are_total(
        triples in arb_triples(40, 4, 200),
        parts in 1usize..6,
        seed in any::<u64>(),
    ) {
        let kg = KnowledgeGraph::new(40, 4, triples).unwrap();
        for p in [
            MetisLike::new(seed).partition(&kg, parts),
            RandomPartitioner::new(seed).partition(&kg, parts),
        ] {
            prop_assert_eq!(p.len(), 40);
            prop_assert_eq!(p.part_sizes().iter().sum::<usize>(), 40);
            for &t in kg.triples() {
                prop_assert_eq!(p.triple_home(t), p.part_of(t.head));
            }
        }
    }

    /// Rank metrics are internally consistent: MRR ≤ Hits@1 bound relation,
    /// Hits monotone in k, MR ≥ 1.
    #[test]
    fn rank_metrics_invariants(ranks in prop::collection::vec(1u64..500, 1..100)) {
        let mut m = RankMetrics::new();
        for &r in &ranks {
            m.add_rank(r);
        }
        prop_assert!(m.mr() >= 1.0);
        prop_assert!(m.mrr() > 0.0 && m.mrr() <= 1.0);
        prop_assert!(m.hits(1) <= m.hits(3));
        prop_assert!(m.hits(3) <= m.hits(10));
        // MRR is at least Hits@1 (each hit contributes 1.0) and at most
        // Hits@1 + (1 - Hits@1) / 2 is not a tight bound — check the basic
        // dominance instead:
        prop_assert!(m.mrr() >= m.hits(1));
    }
}

//! Chaos end-to-end: a lossy network, a straggler episode, a shard outage,
//! and a mid-run worker crash — all in one plan, against every system. The
//! run must complete all epochs, recover from the crash via checkpoints,
//! and still produce embeddings that rank better than chance.

use het_kg::prelude::*;

fn workload() -> (KnowledgeGraph, Split) {
    let kg = SyntheticKg {
        num_entities: 200,
        num_relations: 12,
        num_triples: 1_500,
        ..Default::default()
    }
    .build(7);
    let split = Split::ninety_five_five(&kg, 7);
    (kg, split)
}

/// Everything at once, sized for the tiny test workload: the outage and the
/// straggler window start at t = 0 so they overlap the first pulls no matter
/// how fast the simulated run is.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        drop_probability: 0.08,
        slow_episodes: vec![SlowEpisode {
            start: 0.0,
            end: 0.005,
            latency_factor: 4.0,
        }],
        outages: vec![OutageWindow {
            shard: 1,
            start: 0.0,
            end: 0.030,
        }],
        crash: Some(CrashPoint { epoch: 2 }),
        ..FaultPlan::default()
    }
}

#[test]
fn every_system_survives_the_chaos_profile() {
    let (kg, split) = workload();
    let eval: Vec<Triple> = split.valid.iter().copied().take(30).collect();
    for system in [SystemKind::DglKe, SystemKind::HetKgCps, SystemKind::Pbg] {
        let mut cfg = TrainConfig::small(system);
        cfg.epochs = 5;
        cfg.eval_candidates = Some(100);
        cfg.faults = Some(chaos_plan(9));
        let report = train(&kg, &split.train, &eval, &cfg);

        assert_eq!(
            report.epochs.len(),
            5,
            "{system}: crash recovery must finish the run"
        );
        for (i, e) in report.epochs.iter().enumerate() {
            assert_eq!(
                e.epoch, i,
                "{system}: epoch reports out of order after recovery"
            );
        }

        let fr = report.faults.expect("fault plan attached, report expected");
        assert!(
            fr.drops > 0,
            "{system}: an 8% lossy link must drop messages: {fr:?}"
        );
        assert!(fr.retries > 0, "{system}: drops must be retried");
        assert!(
            fr.retransmitted_bytes > 0,
            "{system}: retries must be metered"
        );
        assert!(
            fr.outage_refusals > 0,
            "{system}: shard 1 was down from t=0: {fr:?}"
        );
        assert!(
            fr.backoff_secs > 0.0,
            "{system}: retries and waits cost simulated time"
        );
        assert_eq!(
            fr.recoveries, 1,
            "{system}: exactly one crash was scheduled"
        );
        assert!(
            fr.checkpoints >= 1,
            "{system}: recovery requires checkpoints"
        );

        let m = report.final_metrics.as_ref().expect("eval set supplied");
        assert!(
            m.mrr() > 0.05,
            "{system}: MRR {} under chaos not better than chance",
            m.mrr()
        );
    }
}

#[test]
fn chaos_barely_moves_hetkg_quality() {
    // Drops are retried transparently and the crash resumes from a recovery
    // checkpoint, so chaos costs simulated time — not model quality.
    let (kg, split) = workload();
    let eval: Vec<Triple> = split.valid.iter().copied().take(30).collect();
    let mut cfg = TrainConfig::small(SystemKind::HetKgCps);
    cfg.epochs = 5;
    cfg.eval_candidates = Some(100);
    let clean = train(&kg, &split.train, &eval, &cfg);

    let mut chaos_cfg = cfg.clone();
    chaos_cfg.faults = Some(chaos_plan(9));
    let chaos = train(&kg, &split.train, &eval, &chaos_cfg);

    let clean_mrr = clean.final_metrics.as_ref().unwrap().mrr();
    let chaos_mrr = chaos.final_metrics.as_ref().unwrap().mrr();
    assert!(
        (clean_mrr - chaos_mrr).abs() < 0.25,
        "chaos MRR {chaos_mrr:.3} drifted too far from fault-free {clean_mrr:.3}"
    );
    assert!(
        chaos.total_comm_secs() > clean.total_comm_secs(),
        "retransmissions must cost simulated network time (chaos {:.4}s vs clean {:.4}s)",
        chaos.total_comm_secs(),
        clean.total_comm_secs()
    );
}

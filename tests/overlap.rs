//! Differential tests for the pipelined timeline: overlap accounting must
//! change *when* simulated time is spent, never *what* is measured.
//!
//! Three contracts, each checked across systems, seeds, and fault settings:
//!
//! 1. `--no-overlap` (config `overlap = false`) reproduces the pre-timeline
//!    sequential accounting bit for bit: zero critical path, epoch time
//!    `max(compute, comm)`.
//! 2. Turning overlap on leaves every measurement — losses, traffic,
//!    compute and communication seconds — bit-identical; only the epoch's
//!    critical path (the schedule) changes, and for the cache-enabled
//!    HET-KG systems it drops strictly below the sequential sum.
//! 3. A perturbing fault plan disables the pipeline outright (fault
//!    verdicts depend on message order), so faulty reports are bit-equal
//!    with overlap on or off; an all-zero (inert) plan keeps it enabled.

use het_kg::prelude::*;

const SEEDS: [u64; 2] = [7, 19];

const SYSTEMS: [SystemKind; 4] = [
    SystemKind::HetKgCps,
    SystemKind::HetKgDps,
    SystemKind::DglKe,
    SystemKind::Pbg,
];

/// Sparse workload: many entities relative to the batch size, so that
/// consecutive mini-batches frequently leave whole PS shards untouched.
/// That is the regime where pipelining can move pulls early (the strict
/// overlap assertions below need it); the bit-identity assertions hold on
/// any workload.
fn workload(seed: u64) -> (KnowledgeGraph, Vec<Triple>) {
    let kg = SyntheticKg {
        num_entities: 2_000,
        num_relations: 12,
        num_triples: 1_500,
        ..Default::default()
    }
    .build(seed);
    let split = Split::ninety_five_five(&kg, seed);
    (kg, split.train)
}

fn config(system: SystemKind, seed: u64) -> TrainConfig {
    let mut cfg = TrainConfig::small(system);
    cfg.epochs = 3;
    cfg.batch_size = 8;
    cfg.eval_candidates = None;
    cfg.seed = seed;
    cfg
}

#[test]
fn no_overlap_reproduces_the_sequential_accounting() {
    for seed in SEEDS {
        let (kg, train_set) = workload(seed);
        for system in SYSTEMS {
            for faults in [None, Some(FaultPlan::lossy(seed, 0.05))] {
                let mut cfg = config(system, seed);
                cfg.overlap = false;
                cfg.faults = faults.clone();
                let report = train(&kg, &train_set, &[], &cfg);
                for e in &report.epochs {
                    assert_eq!(
                        e.critical_path_secs, 0.0,
                        "{system} seed {seed}: sequential run touched the timeline"
                    );
                    assert_eq!(e.overlap_secs, 0.0);
                    assert_eq!(
                        e.epoch_secs().to_bits(),
                        e.compute_secs.max(e.comm_secs).to_bits(),
                        "{system} seed {seed}: epoch {} time is not the idealized max",
                        e.epoch
                    );
                }
            }
        }
    }
}

#[test]
fn overlap_changes_the_schedule_but_not_the_measurements() {
    for seed in SEEDS {
        let (kg, train_set) = workload(seed);
        for system in SYSTEMS {
            let mut seq_cfg = config(system, seed);
            seq_cfg.overlap = false;
            let seq = train(&kg, &train_set, &[], &seq_cfg);

            let pipe_cfg = config(system, seed); // overlap defaults on
            let pipe = train(&kg, &train_set, &[], &pipe_cfg);

            assert_eq!(
                seq.total_traffic(),
                pipe.total_traffic(),
                "{system} seed {seed}: pipelining changed metered traffic"
            );
            assert_eq!(seq.epochs.len(), pipe.epochs.len());
            for (a, b) in seq.epochs.iter().zip(&pipe.epochs) {
                assert_eq!(
                    a.loss.to_bits(),
                    b.loss.to_bits(),
                    "{system} seed {seed}: epoch {} loss diverged under pipelining",
                    a.epoch
                );
                assert_eq!(a.traffic, b.traffic);
                assert_eq!(a.compute_secs.to_bits(), b.compute_secs.to_bits());
                assert_eq!(a.comm_secs.to_bits(), b.comm_secs.to_bits());
                assert_eq!(a.cache.hits, b.cache.hits);
                assert_eq!(a.cache.misses, b.cache.misses);
                // The pipelined epoch time is a real two-lane schedule:
                // bounded below by either lane, above by their sum.
                assert!(b.critical_path_secs >= b.compute_secs.max(b.comm_secs));
                assert!(b.critical_path_secs <= b.compute_secs + b.comm_secs + 1e-9);
                assert!(b.epoch_secs() >= a.epoch_secs());
            }
            // The cache-enabled systems must actually hide communication:
            // consecutive sparse batches leave whole shards untouched, so
            // early pulls land behind compute and the total drops strictly
            // below the sequential compute + comm sum.
            if matches!(system, SystemKind::HetKgCps | SystemKind::HetKgDps) {
                assert!(
                    pipe.total_overlap_secs() > 0.0,
                    "{system} seed {seed}: pipeline hid no communication"
                );
                assert!(
                    pipe.total_secs() < pipe.total_compute_secs() + pipe.total_comm_secs(),
                    "{system} seed {seed}: total {} not below sequential sum {}",
                    pipe.total_secs(),
                    pipe.total_compute_secs() + pipe.total_comm_secs()
                );
            }
        }
    }
}

#[test]
fn perturbing_fault_plans_disable_the_pipeline() {
    let seed = SEEDS[0];
    let (kg, train_set) = workload(seed);
    for system in SYSTEMS {
        let mut on = config(system, seed);
        on.faults = Some(FaultPlan::lossy(seed, 0.05));
        debug_assert!(on.overlap);
        let mut off = on.clone();
        off.overlap = false;

        let a = train(&kg, &train_set, &[], &on);
        let b = train(&kg, &train_set, &[], &off);

        assert_eq!(a.total_traffic(), b.total_traffic());
        assert_eq!(a.faults, b.faults, "{system}: fault accounting diverged");
        assert_eq!(
            a.total_secs().to_bits(),
            b.total_secs().to_bits(),
            "{system}: a perturbing plan must force the sequential schedule"
        );
        for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
            assert_eq!(ea.loss.to_bits(), eb.loss.to_bits());
            assert_eq!(
                ea.critical_path_secs, 0.0,
                "{system}: overlap ran under a perturbing fault plan"
            );
            assert_eq!(eb.critical_path_secs, 0.0);
        }
    }
}

#[test]
fn inert_fault_plans_keep_the_pipeline() {
    // An all-zero plan is a pure observer (see fault_differential.rs); it
    // must not cost the pipeline either.
    let seed = SEEDS[1];
    let (kg, train_set) = workload(seed);
    let mut cfg = config(SystemKind::HetKgCps, seed);
    cfg.faults = Some(FaultPlan::default());
    let report = train(&kg, &train_set, &[], &cfg);
    assert!(
        report.total_overlap_secs() > 0.0,
        "an inert plan must not disable overlap"
    );
    let fr = report.faults.expect("plan attached");
    assert!(fr.is_quiet());
}

//! Integration tests for PS replication and primary/backup failover.
//!
//! Two contracts matter here. First, replication *off is free and on is
//! invisible*: a fault-free run at `k = 2` must produce bit-identical
//! losses, stores, and worker-lane traffic to the same run at `k = 1`,
//! with the extra backup shipping metered only on the dedicated
//! replication lane. Second, a chaos plan that permanently kills a
//! primary shard mid-training must *complete without a checkpoint
//! restart*: the first worker to hit the dead primary promotes a backup
//! (after anti-entropy catch-up) and the run rides through, staying
//! inside the divergence oracle's staleness envelope.

use het_kg::netsim::TrafficSnapshot;
use het_kg::prelude::*;
use het_kg::train_sys::oracle;
use het_kg::train_sys::trainer;

fn workload() -> (KnowledgeGraph, Vec<Triple>) {
    let kg = SyntheticKg {
        num_entities: 200,
        num_relations: 12,
        num_triples: 1_500,
        ..Default::default()
    }
    .build(7);
    let split = Split::ninety_five_five(&kg, 7);
    (kg, split.train)
}

/// Zero the replication lane of a snapshot, leaving the worker lanes.
fn worker_lanes(t: TrafficSnapshot) -> TrafficSnapshot {
    TrafficSnapshot {
        replication_bytes: 0,
        replication_messages: 0,
        ..t
    }
}

#[test]
fn fault_free_replication_is_bit_identical_on_the_worker_lanes() {
    let (kg, train_set) = workload();
    for system in [SystemKind::DglKe, SystemKind::HetKgCps] {
        let mut cfg = TrainConfig::small(system);
        cfg.epochs = 3;
        cfg.eval_candidates = None;
        let (off, off_store) = trainer::train_with_store(&kg, &train_set, &[], &cfg);

        let mut rep_cfg = cfg.clone();
        rep_cfg.replication = 2;
        let (on, on_store) = trainer::train_with_store(&kg, &train_set, &[], &rep_cfg);

        assert_eq!(off.epochs.len(), on.epochs.len());
        for (a, b) in off.epochs.iter().zip(&on.epochs) {
            assert_eq!(
                a.loss.to_bits(),
                b.loss.to_bits(),
                "{system}: epoch {} loss changed under replication",
                a.epoch
            );
            assert_eq!(
                worker_lanes(a.traffic),
                worker_lanes(b.traffic),
                "{system}: epoch {} worker-lane traffic changed",
                a.epoch
            );
        }
        let off_traffic = off.total_traffic();
        let on_traffic = on.total_traffic();
        assert_eq!(
            off_traffic.replication_bytes, 0,
            "{system}: k=1 ships nothing"
        );
        assert_eq!(off_traffic.replication_messages, 0);
        assert!(
            on_traffic.replication_bytes > 0,
            "{system}: k=2 must ship replication batches"
        );
        assert_eq!(
            off_traffic.total_bytes(),
            on_traffic.total_bytes(),
            "{system}: replication is excluded from worker byte totals"
        );

        // The primaries end up bit-identical: replication only copies
        // post-update state, never changes it.
        let ks = kg.key_space();
        let a = trainer::snapshot(&off_store, ks);
        let b = trainer::snapshot(&on_store, ks);
        assert_eq!(a.entities, b.entities, "{system}: entity tables diverged");
        assert_eq!(
            a.relations, b.relations,
            "{system}: relation tables diverged"
        );
    }
}

#[test]
fn killed_primary_fails_over_and_completes_across_seeds() {
    let (kg, train_set) = workload();
    for seed in [11u64, 23, 47] {
        let mut cfg = TrainConfig::small(SystemKind::HetKgCps);
        cfg.epochs = 3;
        cfg.eval_candidates = None;
        cfg.seed = seed;
        cfg.replication = 2;
        cfg.faults = Some(FaultPlan::failover(seed));

        let verdict = oracle::shadow_check(&kg, &train_set, &cfg, oracle::OracleConfig::default());
        let report = &verdict.report;
        assert_eq!(
            report.epochs.len(),
            cfg.epochs,
            "seed {seed}: every epoch completed despite the dead primary"
        );
        let fr = report.faults.as_ref().expect("fault plan attached");
        assert!(
            fr.promotions >= 1,
            "seed {seed}: the kill must trigger a promotion"
        );
        assert_eq!(
            fr.recoveries, 0,
            "seed {seed}: failover rides through without restart-from-checkpoint"
        );
        assert_eq!(
            fr.hedged_wins + fr.hedged_losses,
            fr.hedged_pulls,
            "seed {seed}: every hedge resolves to a win or a loss"
        );
        let sup = report.supervisor.as_ref().expect("supervised run");
        assert_eq!(
            sup.promotions, fr.promotions,
            "seed {seed}: supervisor and injectors agree on promotions"
        );
        assert!(
            sup.events.iter().any(|e| matches!(
                e,
                het_kg::train_sys::supervisor::SupervisorEvent::PrimaryPromoted { .. }
            )),
            "seed {seed}: promotion event recorded"
        );
        verdict.assert_ok();
    }
}

#[test]
fn failover_runs_are_reproducible() {
    let (kg, train_set) = workload();
    let mut cfg = TrainConfig::small(SystemKind::HetKgCps);
    cfg.epochs = 2;
    cfg.eval_candidates = None;
    cfg.replication = 2;
    cfg.faults = Some(FaultPlan::failover(23));

    let a = train(&kg, &train_set, &[], &cfg);
    let b = train(&kg, &train_set, &[], &cfg);
    assert_eq!(a.total_traffic(), b.total_traffic());
    assert_eq!(a.faults, b.faults);
    for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
        assert_eq!(ea.loss.to_bits(), eb.loss.to_bits());
    }
    assert!(a.faults.unwrap().promotions >= 1);
}

#[test]
fn chaos_shard_kill_is_masked_without_replication() {
    // `FaultPlan::chaos` now schedules a shard kill, but at k = 1 there is
    // no backup to promote, so the kill stays masked and chaos behaves as
    // it always did — crash recovery and all.
    let (kg, train_set) = workload();
    let mut cfg = TrainConfig::small(SystemKind::HetKgCps);
    cfg.epochs = 3;
    cfg.eval_candidates = None;
    cfg.faults = Some(FaultPlan::chaos(23));

    let report = train(&kg, &train_set, &[], &cfg);
    assert_eq!(report.epochs.len(), cfg.epochs, "chaos still completes");
    let fr = report.faults.expect("fault plan attached");
    assert_eq!(fr.promotions, 0, "no liveness table, no failover");
    assert_eq!(fr.hedged_pulls, 0, "no backups, no hedging");
    assert!(fr.recoveries >= 1, "the scheduled crash still recovers");
    assert_eq!(report.total_traffic().replication_bytes, 0);
}

//! Cross-backend transport differential: the socket backend must be an
//! exact stand-in for the simulated one.
//!
//! The contract under test is strong on purpose: with compression and
//! faults off, the same seed must produce a bit-identical loss trajectory,
//! identical `TrafficMeter` totals, and a byte-identical final checkpoint
//! whether PS traffic crosses the in-process cost model or real OS
//! processes speaking wire frames over sockets. Any drift means the server
//! processes and the trainer's mirror store have diverged — the one bug
//! class this backend must never have silently.
//!
//! Spawned shard servers come from the `hetkg` binary's `ps-server`
//! subcommand (`CARGO_BIN_EXE_hetkg`), exactly as the CLI wires it.

use het_kg::embed::init::Init;
use het_kg::netsim::TrafficMeter;
use het_kg::prelude::*;
use het_kg::ps::{ProcessCluster, PsClient, ShardServerConfig, SocketMode};
use het_kg::train_sys::trainer;
use std::path::Path;
use std::sync::Arc;

fn hetkg_bin() -> &'static str {
    env!("CARGO_BIN_EXE_hetkg")
}

fn workload(seed: u64) -> (KnowledgeGraph, Vec<Triple>) {
    let kg = SyntheticKg {
        num_entities: 150,
        num_relations: 10,
        num_triples: 900,
        ..Default::default()
    }
    .build(seed);
    let split = Split::ninety_five_five(&kg, seed);
    (kg, split.train)
}

/// Train and return the report plus the serialized final checkpoint.
fn run(
    system: SystemKind,
    seed: u64,
    transport: TransportKind,
    kg: &KnowledgeGraph,
    train: &[Triple],
) -> (TrainReport, Vec<u8>) {
    let mut cfg = TrainConfig::small(system);
    cfg.epochs = 3;
    cfg.machines = 2;
    cfg.seed = seed;
    cfg.eval_candidates = None;
    cfg.transport = transport;
    if transport.is_socket() {
        cfg.ps_server_bin = Some(hetkg_bin().to_string());
    }
    let (report, store) = trainer::train_with_store(kg, train, &[], &cfg);
    let ck = trainer::checkpoint(&store, kg.key_space());
    (report, ck.to_bytes().expect("checkpoint fits").to_vec())
}

fn assert_identical(system: SystemKind, seed: u64, socket: TransportKind) {
    let (kg, train) = workload(seed);
    let (sim_report, sim_ck) = run(system, seed, TransportKind::Sim, &kg, &train);
    let (sock_report, sock_ck) = run(system, seed, socket, &kg, &train);

    assert_eq!(sim_report.epochs.len(), sock_report.epochs.len());
    for (a, b) in sim_report.epochs.iter().zip(&sock_report.epochs) {
        assert_eq!(
            a.loss.to_bits(),
            b.loss.to_bits(),
            "{system} seed {seed} {socket}: loss diverged at epoch {}",
            a.epoch
        );
    }
    assert_eq!(
        sim_report.total_traffic(),
        sock_report.total_traffic(),
        "{system} seed {seed} {socket}: metered traffic diverged"
    );
    assert_eq!(
        sim_ck, sock_ck,
        "{system} seed {seed} {socket}: final checkpoint bytes diverged"
    );
}

/// The headline differential: 2 systems × 2 seeds over Unix-domain
/// sockets, each against its own sim run.
#[cfg(unix)]
#[test]
fn uds_backend_is_bit_identical_to_sim() {
    for system in [SystemKind::DglKe, SystemKind::HetKgCps] {
        for seed in [11u64, 23] {
            assert_identical(system, seed, TransportKind::Uds);
        }
    }
}

/// TCP takes the same wire path through different sockets; one
/// system/seed pair keeps it honest on every platform.
#[test]
fn tcp_backend_is_bit_identical_to_sim() {
    assert_identical(SystemKind::HetKgCps, 7, TransportKind::Tcp);
}

/// A torn connection — servers killed out from under a live client — must
/// surface as a typed [`het_kg::ps::RpcError`], not a panic or a hang.
#[test]
fn dead_servers_surface_typed_rpc_errors() {
    let cfg = ShardServerConfig {
        num_entities: 8,
        num_relations: 2,
        entity_shard: vec![0; 8],
        num_shards: 1,
        entity_dim: 4,
        relation_dim: 4,
        init: Init::Uniform { bound: 0.1 },
        seed: 3,
        optimizer: OptimizerKind::Sgd { lr: 0.1 },
    };
    let mut cluster = ProcessCluster::spawn(Path::new(hetkg_bin()), &cfg, SocketMode::Tcp)
        .expect("spawn one-shard cluster");
    let transport = Arc::new(cluster.transport());
    cluster.kill_all();

    let store = Arc::new(cfg.build_store());
    let client = PsClient::new(
        0,
        ClusterTopology::new(1, 1),
        store,
        Arc::new(TrafficMeter::new()),
    )
    .with_transport(transport);
    let mut row = [0.0f32; 4];
    let err = client
        .try_pull(ParamKey(0), &mut row)
        .expect_err("pull against killed servers must fail");
    // The exact variant depends on how fast the OS tears the listener down
    // (refused vs reset vs timeout); what matters is a typed error with a
    // Display impl, not a panic.
    let rendered = format!("{err}");
    assert!(!rendered.is_empty());
}

//! Integration tests for overload protection: the retry budget, per-shard
//! circuit breakers, and the HET-KG cache brownout under a flash crowd.
//!
//! Three contracts matter. First, *protection armed but idle is free*: a
//! zero-fault run with the budget and breakers enabled must be bit-identical
//! to the same run without them — the shared state only moves when an
//! overload verdict fires. Second, a flash-crowd plan must *complete and
//! stay inside the staleness envelope* while actually exercising the
//! machinery: sheds, denied retries, at least one full
//! Open→HalfOpen→Closed breaker cycle, and brownout stale serves. Third,
//! the budget must *pay for itself*: the same flash crowd with the budget
//! disabled retransmits strictly more bytes (the classic retry storm).

use het_kg::prelude::*;
use het_kg::ps::{BreakerConfig, RetryBudgetConfig};
use het_kg::train_sys::oracle;
use het_kg::train_sys::report::TrainReport;

fn workload() -> (KnowledgeGraph, Vec<Triple>) {
    let kg = SyntheticKg {
        num_entities: 200,
        num_relations: 12,
        num_triples: 1_500,
        ..Default::default()
    }
    .build(7);
    let split = Split::ninety_five_five(&kg, 7);
    (kg, split.train)
}

#[test]
fn armed_overload_protection_is_invisible_without_faults() {
    let (kg, train_set) = workload();
    for system in [SystemKind::HetKgCps, SystemKind::DglKe] {
        let mut plain = TrainConfig::small(system);
        plain.epochs = 3;
        plain.eval_candidates = None;
        plain.faults = Some(FaultPlan::default());

        let mut armed = plain.clone();
        armed.retry_budget = Some(RetryBudgetConfig::default());
        armed.breaker = Some(BreakerConfig::default());

        let a = train(&kg, &train_set, &[], &plain);
        let b = train(&kg, &train_set, &[], &armed);

        assert_eq!(
            a.total_traffic(),
            b.total_traffic(),
            "{system}: armed protection changed metered traffic"
        );
        for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
            assert_eq!(
                ea.loss.to_bits(),
                eb.loss.to_bits(),
                "{system}: epoch {} loss diverged with protection armed",
                ea.epoch
            );
            assert_eq!(ea.traffic, eb.traffic);
            assert_eq!(ea.cache.hits, eb.cache.hits);
            assert_eq!(ea.cache.misses, eb.cache.misses);
        }
        let fr = b.faults.expect("plan attached, report expected");
        assert!(
            fr.is_quiet(),
            "{system}: idle budget/breakers raised counters: {fr:?}"
        );
    }
}

#[test]
fn flash_crowd_browns_out_and_recovers_across_seeds() {
    let (kg, train_set) = workload();
    for seed in [11u64, 23, 47] {
        let mut cfg = TrainConfig::small(SystemKind::HetKgCps);
        cfg.epochs = 3;
        cfg.eval_candidates = None;
        cfg.seed = seed;
        cfg.faults = Some(FaultPlan::overload(seed));
        cfg.retry_budget = Some(RetryBudgetConfig::default());
        cfg.breaker = Some(BreakerConfig::default());

        let verdict = oracle::shadow_check(&kg, &train_set, &cfg, oracle::OracleConfig::default());
        let report = &verdict.report;
        assert_eq!(
            report.epochs.len(),
            cfg.epochs,
            "seed {seed}: every epoch completed despite the flash crowd"
        );
        let fr = report.faults.as_ref().expect("fault plan attached");
        assert!(
            fr.overload_sheds > 0,
            "seed {seed}: the saturated shard never shed: {fr:?}"
        );
        assert!(
            fr.retries_denied > 0,
            "seed {seed}: the budget never ran dry: {fr:?}"
        );
        assert!(
            fr.breaker_opens >= 1 && fr.breaker_half_opens >= 1 && fr.breaker_closes >= 1,
            "seed {seed}: no full Open->HalfOpen->Closed cycle: {fr:?}"
        );
        assert!(
            fr.breaker_closes <= fr.breaker_half_opens && fr.breaker_half_opens <= fr.breaker_opens,
            "seed {seed}: breaker transition counts out of order: {fr:?}"
        );
        assert!(
            fr.brownout_stale_serves > 0,
            "seed {seed}: the cache never served stale under the open breaker: {fr:?}"
        );
        assert!(
            fr.brownout_secs > 0.0,
            "seed {seed}: closed breaker cycles must account brownout time"
        );
        assert_eq!(
            fr.degraded_hits, 0,
            "seed {seed}: no outage in the plan, outage hits must stay zero"
        );
        verdict.assert_ok();
    }
}

#[test]
fn retry_budget_cuts_retransmitted_bytes_versus_the_storm() {
    // Breakers off in both arms so the comparison isolates the budget:
    // identical plan, identical workload — the only difference is whether
    // a dry bucket may refuse the retry.
    let (kg, train_set) = workload();
    let mut with_budget = TrainConfig::small(SystemKind::HetKgCps);
    with_budget.epochs = 3;
    with_budget.eval_candidates = None;
    with_budget.faults = Some(FaultPlan::overload(23));
    with_budget.retry_budget = Some(RetryBudgetConfig::default());

    let mut storm = with_budget.clone();
    storm.retry_budget = None;

    let a = train(&kg, &train_set, &[], &with_budget);
    let b = train(&kg, &train_set, &[], &storm);
    let fa = a.faults.expect("plan attached");
    let fb = b.faults.expect("plan attached");
    assert!(
        fa.retries_denied > 0,
        "the budget must actually deny something: {fa:?}"
    );
    assert_eq!(fb.retries_denied, 0, "no budget, nothing to deny");
    assert!(
        fa.retransmitted_bytes < fb.retransmitted_bytes,
        "the budget must cut retransmitted bytes: {} (budget) vs {} (storm)",
        fa.retransmitted_bytes,
        fb.retransmitted_bytes
    );
    assert!(
        fa.retries < fb.retries,
        "denied retries must show up as fewer retransmissions"
    );
}

#[test]
fn overload_runs_are_reproducible() {
    let (kg, train_set) = workload();
    let mut cfg = TrainConfig::small(SystemKind::HetKgCps);
    cfg.epochs = 2;
    cfg.eval_candidates = None;
    cfg.faults = Some(FaultPlan::overload(23));
    cfg.retry_budget = Some(RetryBudgetConfig::default());
    cfg.breaker = Some(BreakerConfig::default());

    let a = train(&kg, &train_set, &[], &cfg);
    let b = train(&kg, &train_set, &[], &cfg);
    assert_eq!(a.total_traffic(), b.total_traffic());
    assert_eq!(a.faults, b.faults);
    for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
        assert_eq!(ea.loss.to_bits(), eb.loss.to_bits());
    }
}

#[test]
fn pre_overload_report_fixture_still_deserializes() {
    // A TrainReport serialized before the overload counters existed (the
    // checked-in fixture) must keep loading, with every new field at its
    // zero default and every old field intact.
    let raw = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/pre_overload_report.json"
    ))
    .expect("fixture present");
    let report: TrainReport = serde_json::from_str(&raw).expect("pre-overload report loads");
    assert_eq!(report.system, "HET-KG-C");
    assert_eq!(report.epochs.len(), 1);
    assert_eq!(report.epochs[0].max_staleness, 4);
    let fr = report.faults.expect("fixture carries a fault report");
    assert_eq!(fr.drops, 17);
    assert_eq!(fr.retransmitted_bytes, 43_520);
    assert_eq!(fr.degraded_hits, 88);
    assert_eq!(fr.hedged_losses, 4);
    assert_eq!(fr.overload_sheds, 0);
    assert_eq!(fr.overload_throttled, 0);
    assert_eq!(fr.overload_extra_secs, 0.0);
    assert_eq!(fr.retries_denied, 0);
    assert_eq!(fr.breaker_fast_fails, 0);
    assert_eq!(fr.brownout_stale_serves, 0);
    assert_eq!(fr.shed_pushes, 0);
    assert_eq!(fr.breaker_opens, 0);
    assert_eq!(fr.breaker_half_opens, 0);
    assert_eq!(fr.breaker_closes, 0);
    assert_eq!(fr.brownout_secs, 0.0);
}

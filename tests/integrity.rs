//! End-to-end integrity drills: seeded corruption against the full
//! training stack, with the wire-frame checksums as the only line of
//! defence; torn checkpoint writes against the crash-recovery path; and
//! the supervisor's restart budget as the last backstop.

use het_kg::prelude::*;
use het_kg::train_sys::oracle::{shadow_check, OracleConfig};

fn workload() -> (KnowledgeGraph, Vec<Triple>) {
    let kg = SyntheticKg {
        num_entities: 150,
        num_relations: 10,
        num_triples: 900,
        ..Default::default()
    }
    .build(11);
    let split = Split::ninety_five_five(&kg, 11);
    (kg, split.train)
}

#[test]
fn seeded_corruption_leaves_zero_poisoned_entries() {
    // The headline acceptance drill: a corrupting network, checksums on.
    // Every flipped frame must be detected and re-pulled, the run must
    // complete, and the final embeddings must be bit-identical to a clean
    // run — zero poisoned table entries.
    let (kg, train_set) = workload();
    for system in [SystemKind::DglKe, SystemKind::HetKgDps] {
        let mut cfg = TrainConfig::small(system);
        cfg.epochs = 2;
        cfg.eval_candidates = None;
        // The tiny workload only sends ~60 remote frames; 8% keeps the
        // drill deterministic-with-injections at this seed.
        cfg.faults = Some(FaultPlan::corrupting(31, 0.08));
        let verdict = shadow_check(&kg, &train_set, &cfg, OracleConfig::default());

        assert_eq!(
            verdict.report.epochs.len(),
            2,
            "{system}: run did not complete"
        );
        let fr = verdict.report.faults.as_ref().unwrap();
        assert!(fr.corrupt_frames > 0, "{system}: plan injected nothing");
        assert_eq!(
            fr.corrupt_detected, fr.corrupt_frames,
            "{system}: a flip went unnoticed"
        );
        assert_eq!(fr.corrupt_ingested, 0, "{system}: poison was ingested");
        assert!(
            verdict.exact,
            "{system}: corruption under checksums is value-preserving"
        );
        assert_eq!(
            verdict.max_divergence, 0.0,
            "{system}: poisoned entries diverged from the clean reference"
        );
        verdict.assert_ok();
    }
}

#[test]
fn without_checksums_the_same_corruption_poisons_the_run() {
    // The control arm: identical plan, integrity off. The garbage lands in
    // the tables and the divergence oracle flags the run as inexact with
    // nonzero drift.
    let (kg, train_set) = workload();
    let mut cfg = TrainConfig::small(SystemKind::DglKe);
    cfg.epochs = 2;
    cfg.eval_candidates = None;
    cfg.integrity = false;
    cfg.faults = Some(FaultPlan::corrupting(31, 0.1));
    let verdict = shadow_check(&kg, &train_set, &cfg, OracleConfig::default());

    let fr = verdict.report.faults.as_ref().unwrap();
    assert!(fr.corrupt_ingested > 0, "nothing stopped the poison");
    assert_eq!(fr.corrupt_detected, 0, "verification was off");
    assert!(!verdict.exact);
    assert!(
        verdict.max_divergence > 0.0,
        "silent corruption must leave a trace"
    );
}

#[test]
fn torn_checkpoint_write_recovers_to_the_previous_valid_one() {
    // Crash at epoch 2 with the newest on-disk checkpoint deliberately
    // truncated mid-write: recovery must skip it, restore the previous
    // valid image, and finish all epochs — no panic, no lost run.
    let dir = std::env::temp_dir().join(format!("hetkg-integrity-torn-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let (kg, train_set) = workload();
    let mut cfg = TrainConfig::small(SystemKind::HetKgCps);
    cfg.epochs = 4;
    cfg.eval_candidates = None;
    cfg.checkpoint_dir = Some(dir.to_string_lossy().into_owned());
    cfg.faults = Some(FaultPlan {
        seed: 5,
        crashes: vec![CrashPoint { epoch: 2 }],
        torn_checkpoint: Some(2),
        ..FaultPlan::default()
    });
    let report = train(&kg, &train_set, &[], &cfg);

    assert_eq!(
        report.epochs.len(),
        4,
        "run must finish despite the torn write"
    );
    let fr = report.faults.as_ref().unwrap();
    assert_eq!(fr.recoveries, 1);
    let sup = report
        .supervisor
        .as_ref()
        .expect("fault plans are supervised");
    assert_eq!(
        sup.torn_checkpoints_skipped, 1,
        "the torn image must be skipped, not trusted"
    );
    assert!(!sup.gave_up);
    assert!(
        dir.join("manifest.txt").exists(),
        "disk store keeps a manifest"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exhausted_restart_budget_abandons_the_run_gracefully() {
    let (kg, train_set) = workload();
    let mut cfg = TrainConfig::small(SystemKind::DglKe);
    cfg.epochs = 3;
    cfg.eval_candidates = None;
    cfg.supervisor.max_restarts = 0;
    cfg.faults = Some(FaultPlan {
        seed: 5,
        crashes: vec![CrashPoint { epoch: 1 }],
        ..FaultPlan::default()
    });
    let report = train(&kg, &train_set, &[], &cfg);

    assert!(
        report.epochs.len() < 3,
        "a zero-restart budget cannot finish this run"
    );
    let sup = report.supervisor.as_ref().unwrap();
    assert!(sup.gave_up);
    assert_eq!(report.faults.as_ref().unwrap().recoveries, 0);
}

//! Differential tests for the fault-injection subsystem: attaching a
//! zero-fault [`FaultPlan`] must be a pure observer. Traffic, losses, and
//! cache behaviour have to be byte-identical to a run with no plan at all —
//! the injection hooks may meter, but never perturb.

use het_kg::prelude::*;

fn workload() -> (KnowledgeGraph, Vec<Triple>) {
    let kg = SyntheticKg {
        num_entities: 200,
        num_relations: 12,
        num_triples: 1_500,
        ..Default::default()
    }
    .build(7);
    let split = Split::ninety_five_five(&kg, 7);
    (kg, split.train)
}

#[test]
fn zero_fault_plan_is_invisible_on_every_system() {
    let (kg, train_set) = workload();
    for system in [
        SystemKind::DglKe,
        SystemKind::HetKgCps,
        SystemKind::HetKgDps,
        SystemKind::Pbg,
    ] {
        let mut cfg = TrainConfig::small(system);
        cfg.epochs = 3;
        cfg.eval_candidates = None;
        let baseline = train(&kg, &train_set, &[], &cfg);
        assert!(
            baseline.faults.is_none(),
            "{system}: fault-free run must carry no report"
        );

        let mut shadowed_cfg = cfg.clone();
        shadowed_cfg.faults = Some(FaultPlan::default());
        let shadowed = train(&kg, &train_set, &[], &shadowed_cfg);

        assert_eq!(
            baseline.total_traffic(),
            shadowed.total_traffic(),
            "{system}: zero-fault plan changed traffic"
        );
        assert_eq!(baseline.epochs.len(), shadowed.epochs.len());
        for (b, s) in baseline.epochs.iter().zip(&shadowed.epochs) {
            assert_eq!(
                b.loss.to_bits(),
                s.loss.to_bits(),
                "{system}: epoch {} loss diverged under a zero-fault plan",
                b.epoch
            );
            assert_eq!(
                b.traffic, s.traffic,
                "{system}: epoch {} traffic diverged",
                b.epoch
            );
            assert_eq!(
                b.cache.hits, s.cache.hits,
                "{system}: epoch {} cache hits",
                b.epoch
            );
            assert_eq!(
                b.cache.misses, s.cache.misses,
                "{system}: epoch {} misses",
                b.epoch
            );
        }

        let fr = shadowed.faults.expect("plan attached, report expected");
        assert!(
            fr.is_quiet(),
            "{system}: zero-fault plan raised counters: {fr:?}"
        );
    }
}

#[test]
fn checksums_are_free_when_nothing_is_corrupt() {
    // Integrity on vs off over a clean (zero-corruption) network must be
    // byte-identical in every observable: the checksum rides in a fixed-size
    // header the meter already accounts for, verification is pure
    // arithmetic, and no draw is taken from any injector RNG. "Integrity is
    // free when clean" is what makes default-on defensible.
    let (kg, train_set) = workload();
    for system in [
        SystemKind::DglKe,
        SystemKind::HetKgCps,
        SystemKind::HetKgDps,
        SystemKind::Pbg,
    ] {
        let mut on = TrainConfig::small(system);
        on.epochs = 3;
        on.eval_candidates = None;
        on.faults = Some(FaultPlan::lossy(23, 0.05));
        on.integrity = true;
        let mut off = on.clone();
        off.integrity = false;

        let a = train(&kg, &train_set, &[], &on);
        let b = train(&kg, &train_set, &[], &off);

        assert_eq!(
            a.total_traffic(),
            b.total_traffic(),
            "{system}: checksum verification changed metered traffic"
        );
        assert_eq!(a.faults, b.faults, "{system}: fault accounting diverged");
        assert_eq!(
            a.total_secs().to_bits(),
            b.total_secs().to_bits(),
            "{system}: simulated time diverged"
        );
        for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
            assert_eq!(
                ea.loss.to_bits(),
                eb.loss.to_bits(),
                "{system}: epoch {} loss diverged with checksums off",
                ea.epoch
            );
        }
    }
}

#[test]
fn faulty_runs_are_reproducible() {
    // Same seed + same plan = the same faults, byte for byte. The injector's
    // RNG is private per worker, so thread scheduling cannot leak in.
    let (kg, train_set) = workload();
    let mut cfg = TrainConfig::small(SystemKind::HetKgDps);
    cfg.epochs = 3;
    cfg.eval_candidates = None;
    cfg.faults = Some(FaultPlan::lossy(23, 0.05));

    let a = train(&kg, &train_set, &[], &cfg);
    let b = train(&kg, &train_set, &[], &cfg);

    assert_eq!(a.total_traffic(), b.total_traffic());
    assert_eq!(a.faults, b.faults);
    let fr = a.faults.unwrap();
    assert!(
        fr.drops > 0,
        "5% loss over three epochs must drop something"
    );
    assert_eq!(
        fr.retries, fr.drops,
        "every drop costs exactly one retry here"
    );
    assert!(fr.retransmitted_bytes > 0);
    for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
        assert_eq!(ea.loss.to_bits(), eb.loss.to_bits());
    }
}

#[test]
fn lossy_network_costs_time_but_not_convergence() {
    // Retries retransmit the same payload, so the model sees identical
    // gradients; only the simulated clock (backoff + resends) gets worse.
    let (kg, train_set) = workload();
    let mut cfg = TrainConfig::small(SystemKind::HetKgCps);
    cfg.epochs = 3;
    cfg.eval_candidates = None;
    let clean = train(&kg, &train_set, &[], &cfg);

    let mut lossy_cfg = cfg.clone();
    lossy_cfg.faults = Some(FaultPlan::lossy(23, 0.05));
    let lossy = train(&kg, &train_set, &[], &lossy_cfg);

    for (c, l) in clean.epochs.iter().zip(&lossy.epochs) {
        assert_eq!(
            c.loss.to_bits(),
            l.loss.to_bits(),
            "drops are retried transparently; training math must not change"
        );
    }
    assert!(
        lossy.total_comm_secs() > clean.total_comm_secs(),
        "retransmissions and backoff must show up in simulated time"
    );
}

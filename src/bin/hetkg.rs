//! `hetkg` — the command-line face of the library.
//!
//! ```text
//! hetkg stats     (--data DIR | --synthetic NAME)
//! hetkg partition (--data DIR | --synthetic NAME) [--parts N]
//! hetkg train     (--data DIR | --synthetic NAME) [--system S] [--model M]
//!                 [--dim D] [--epochs E] [--machines N] [--out CK.bin]
//!                 [--fault-profile P] [--checkpoint-every N]
//!                 [--integrity on|off] [--checkpoint-dir DIR]
//!                 [--max-restarts N] [--oracle on|off]
//!                 [--compress off|int8|int4|topk|adaptive]
//!                 [--transport sim|tcp|uds]
//! hetkg eval      (--data DIR | --synthetic NAME) --checkpoint CK.bin
//!                 [--model M] [--dim D] [--candidates K] [--eval-threads N]
//! hetkg serve     (--checkpoint CK.bin | --checkpoint-dir DIR)
//!                 [--model M] [--dim D] [--shards N] [--threads N]
//!                 [--queries N] [--warmup N] [--topk K] [--topk-share F]
//!                 [--zipf S] [--cache-rows N] [--warm on|off]
//!                 [--think-us N] [--reload-ms N] [--report PATH]
//! hetkg ps-server --config FILE --shard N --listen (tcp:ADDR | uds:PATH)
//! ```
//!
//! `serve` loads a trained checkpoint into sharded read-only tables and
//! benchmarks the online read path: Zipf-skewed point lookups plus top-k
//! link prediction on closed-loop worker threads, with a hotness-gated
//! hot-row cache in front. The digest line it prints is deterministic per
//! (seed, snapshot, thread count) — CI pins it across runs.
//!
//! `--data DIR` expects FB15k-format `train.txt`/`valid.txt`/`test.txt`;
//! `--synthetic NAME` is one of `fb15k`, `wn18`, `freebase86m` (harness
//! scale). `--fault-profile` is a named preset (`none`, `lossy`, `corrupt`,
//! `outage`, `overload`, `chaos`, `failover`) or a path to a JSON
//! [`FaultPlan`] file. `--replication K` keeps `K - 1` backup replicas per
//! PS shard; the `failover` profile (which permanently kills a primary
//! mid-run) defaults it to 2 and refuses to run without a backup. The
//! `overload` profile (a flash crowd saturating a shard) defaults
//! `--retry-budget` and `--breaker` on so the run browns out instead of
//! retry-storming.
//!
//! `--transport tcp|uds` runs each PS shard as a real OS process speaking
//! length-prefixed wire frames over sockets; `train` spawns them itself via
//! the `ps-server` subcommand (not normally invoked by hand). Fault
//! injection, replication, and overload protection are sim-only.

use het_kg::embed::checkpoint::Checkpoint;
use het_kg::eval::breakdown::evaluate_breakdown_threaded;
use het_kg::eval::link_prediction::EmbeddingSnapshot;
use het_kg::kgraph::io::load_benchmark;
use het_kg::kgraph::stats::AccessCounter;
use het_kg::partition::quality;
use het_kg::prelude::*;
use het_kg::ps::ShardServerConfig;
use het_kg::train_sys::oracle;
use het_kg::train_sys::trainer;
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::process::exit;

/// Everything that can go wrong before or during a command. Usage errors
/// (bad flags, unknown commands) exit with status 2; runtime errors (data
/// loading, checkpoint I/O) with status 1.
#[derive(Debug)]
enum CliError {
    UnknownCommand(String),
    UnexpectedArg(String),
    MissingValue(String),
    UnknownFlag { command: &'static str, flag: String },
    BadFlag { flag: &'static str, message: String },
    MissingFlag(&'static str),
    Data(String),
    Checkpoint(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownCommand(c) => write!(f, "unknown command {c:?}; try --help"),
            CliError::UnexpectedArg(a) => {
                write!(f, "unexpected argument {a:?} (flags are --name value)")
            }
            CliError::MissingValue(name) => write!(f, "--{name} needs a value"),
            CliError::UnknownFlag { command, flag } => {
                write!(f, "--{flag} is not a `{command}` flag; try --help")
            }
            CliError::BadFlag { flag, message } => write!(f, "--{flag}: {message}"),
            CliError::MissingFlag(name) => write!(f, "--{name} is required"),
            CliError::Data(m) => write!(f, "{m}"),
            CliError::Checkpoint(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl CliError {
    fn exit_code(&self) -> i32 {
        match self {
            CliError::Data(_) | CliError::Checkpoint(_) => 1,
            _ => 2,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return;
    }
    if let Err(e) = run(args) {
        eprintln!("error: {e}");
        exit(e.exit_code());
    }
}

fn run(mut args: Vec<String>) -> Result<(), CliError> {
    let command = args.remove(0);
    let flags = parse_flags(&args)?;
    match command.as_str() {
        "stats" => cmd_stats(&flags),
        "partition" => cmd_partition(&flags),
        "train" => cmd_train(&flags),
        "eval" => cmd_eval(&flags),
        "serve" => cmd_serve(&flags),
        "ps-server" => cmd_ps_server(&flags),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

fn usage() {
    println!("hetkg — knowledge graph embedding training with a hotness-aware cache\n");
    println!("commands:");
    println!("  stats      dataset statistics and access-frequency skew");
    println!("  partition  compare METIS-like vs random partitioning quality");
    println!("  train      distributed training (simulated cluster); saves a checkpoint");
    println!("  eval       filtered link prediction from a checkpoint, with breakdown");
    println!("  serve      online serving benchmark from a checkpoint: Zipf lookups +");
    println!("             top-k link prediction on real worker threads");
    println!("  ps-server  one parameter-server shard process (spawned by train");
    println!("             when --transport is tcp or uds; not normally run by hand)\n");
    println!("data selection (all commands):");
    println!("  --data DIR        FB15k-format train.txt/valid.txt/test.txt");
    println!("  --synthetic NAME  fb15k | wn18 | freebase86m (harness scale)\n");
    println!("training flags:");
    println!("  --system S      hetkg-c | hetkg-d | dglke | pbg      (default hetkg-d)");
    println!("  --model M       transe | distmult | complex | ...    (default transe)");
    println!("  --dim D         embedding dimension                  (default 64)");
    println!("  --epochs E      training epochs                      (default 10)");
    println!("  --machines N    simulated machines                   (default 4)");
    println!("  --parts N       partitions for `partition`           (default 4)");
    println!("  --candidates K  eval candidate subsample             (default 500)");
    println!("  --eval-threads N rank test triples on N threads; metrics are");
    println!("                  bit-identical for any N               (default 1)");
    println!("  --out PATH      checkpoint output                    (default hetkg-model.bin)");
    println!("  --checkpoint P  checkpoint input for `eval` / `serve`");
    println!("  --seed N        master seed                          (default 42)");
    println!("  --no-overlap    disable comm/compute pipelining; reproduces the");
    println!("                  sequential timing accounting bit for bit");
    println!("  --compress C    push-path gradient compression        (default off)");
    println!("                  off: dense f32 rows, bit-identical to pre-compression");
    println!("                  int8 | int4: per-row scaled quantization");
    println!("                  topk: top-k sparsification (k = dim/4)");
    println!("                  adaptive: starts at int8, tightens to top-k only");
    println!("                  while the comm lane is the bottleneck; error-");
    println!("                  feedback residuals stay client-side in every mode");
    println!("  --transport T   sim | tcp | uds                       (default sim)");
    println!("                  sim: in-process cost-model cluster, bit-identical");
    println!("                       to every earlier release");
    println!("                  tcp | uds: each PS shard is a real OS process");
    println!("                       (spawned `hetkg ps-server`) reached over");
    println!("                       TCP or Unix sockets; same loss trajectory");
    println!("                       and metered bytes as sim. Incompatible with");
    println!("                       --fault-profile, --replication > 1,");
    println!("                       --retry-budget, and --breaker (sim-only)");
    println!("fault injection (train):");
    println!("  --fault-profile P    none | lossy | corrupt | outage | overload | chaos");
    println!("                       | failover, or a JSON FaultPlan file (default none)");
    println!("                       lossy: 2% remote-message loss with retry/backoff");
    println!("                       corrupt: 1% payload bit-flips, caught by the");
    println!("                                wire-frame checksum and re-pulled");
    println!("                       outage: PS shard 1 down mid-run; HET-KG serves");
    println!("                               stale hits and defers pushes meanwhile");
    println!("                       overload: a flash crowd saturates shard 1 — it");
    println!("                                 sheds and throttles arrivals; budget +");
    println!("                                 breaker + cache brownout ride it out");
    println!("                       chaos: loss + outage + straggler + worker crash");
    println!("                              recovered from a checkpoint (+ a shard");
    println!("                              kill, armed only when replication is on)");
    println!("                       failover: loss + straggler + a permanent primary");
    println!("                                 kill survived by backup promotion");
    println!("  --replication K      backup replicas per PS shard: K-1 (default 1 =");
    println!("                       off; failover profile defaults to 2)");
    println!("  --retry-budget on|off run-global retry token bucket: retries spend,");
    println!("                       successes earn; a dry bucket denies the retry");
    println!("                       and degrades instead of storming   (default off;");
    println!("                       overload profile defaults to on)");
    println!("  --breaker on|off     per-shard circuit breakers (Closed -> Open ->");
    println!("                       HalfOpen): consecutive overload verdicts or a");
    println!("                       sustained latency-ratio breach open the breaker;");
    println!("                       open breakers fail writes fast and the cache");
    println!("                       browns out                         (default off;");
    println!("                       overload profile defaults to on)");
    println!("  --checkpoint-every N recovery checkpoint every N epochs (0 = off;");
    println!("                       forced on when the profile schedules a crash)");
    println!("integrity & supervision (train):");
    println!("  --integrity on|off   verify wire-frame checksums     (default on;");
    println!("                       off lets injected corruption poison the tables)");
    println!("  --checkpoint-dir DIR keep recovery checkpoints on disk, written");
    println!("                       crash-consistently with a manifest (default:");
    println!("                       validated in-memory images)");
    println!("  --max-restarts N     supervisor restart budget per worker (default 3)");
    println!("  --oracle on|off      also run a fault-free shadow reference and");
    println!("                       check per-key divergence        (default off)");
    println!("serving flags (serve):");
    println!("  --checkpoint-dir DIR serve the newest valid checkpoint from a");
    println!("                       manifest store (alternative to --checkpoint)");
    println!("  --shards N      entity-table shards                  (default 4)");
    println!("  --threads N     closed-loop client threads           (default 2)");
    println!("  --queries N     timed queries per thread             (default 10000)");
    println!("  --warmup N      untimed warmup queries per thread    (default 2000)");
    println!("  --topk K        k for top-k queries                  (default 10)");
    println!("  --topk-share F  fraction of queries that are top-k   (default 0.02)");
    println!("  --zipf S        workload skew exponent (0 = uniform) (default 1.0)");
    println!("  --cache-rows N  hot-row cache budget (0 = minimum)   (default entities/4)");
    println!("  --warm on|off   pre-admit rows by training-data hotness; needs");
    println!("                  --data/--synthetic                   (default off)");
    println!("  --think-us N    per-query client think time, us      (default 0)");
    println!("  --reload-ms N   poll --checkpoint-dir for newer checkpoints and");
    println!("                  hot-swap without stalling readers (0 = off)");
    println!("  --report PATH   write the full ServeReport JSON here");
}

/// Flags that stand alone (no value follows them).
const BARE_FLAGS: &[&str] = &["no-overlap"];

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, CliError> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(CliError::UnexpectedArg(arg.clone()));
        };
        if BARE_FLAGS.contains(&name) {
            flags.insert(name.to_string(), String::new());
            continue;
        }
        let Some(value) = it.next() else {
            return Err(CliError::MissingValue(name.to_string()));
        };
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn flag<'a>(flags: &'a HashMap<String, String>, name: &str, default: &'a str) -> &'a str {
    flags.get(name).map(String::as_str).unwrap_or(default)
}

/// Flags every command accepts (data selection + seed).
const COMMON_FLAGS: &[&str] = &["data", "synthetic", "seed"];

/// Reject flags the command does not understand — a typo'd flag must fail
/// loudly, not silently train with defaults.
fn check_flags(
    command: &'static str,
    flags: &HashMap<String, String>,
    allowed: &[&str],
) -> Result<(), CliError> {
    for k in flags.keys() {
        if !COMMON_FLAGS.contains(&k.as_str()) && !allowed.contains(&k.as_str()) {
            return Err(CliError::UnknownFlag {
                command,
                flag: k.clone(),
            });
        }
    }
    Ok(())
}

/// Parse an integer flag that must be ≥ 1.
fn positive(
    flags: &HashMap<String, String>,
    name: &'static str,
    default: usize,
) -> Result<usize, CliError> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            Ok(n) => Err(CliError::BadFlag {
                flag: name,
                message: format!("must be at least 1, got {n}"),
            }),
            Err(_) => Err(CliError::BadFlag {
                flag: name,
                message: format!("{v:?} is not an integer"),
            }),
        },
    }
}

/// Parse an integer flag that may be 0.
fn non_negative(
    flags: &HashMap<String, String>,
    name: &'static str,
    default: usize,
) -> Result<usize, CliError> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse::<usize>().map_err(|_| CliError::BadFlag {
            flag: name,
            message: format!("{v:?} is not an integer"),
        }),
    }
}

/// Parse a finite, non-negative float flag.
fn fraction(
    flags: &HashMap<String, String>,
    name: &'static str,
    default: f64,
) -> Result<f64, CliError> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => match v.parse::<f64>() {
            Ok(f) if f.is_finite() && f >= 0.0 => Ok(f),
            _ => Err(CliError::BadFlag {
                flag: name,
                message: format!("{v:?} is not a non-negative number"),
            }),
        },
    }
}

/// Parse an `on|off` flag (also accepts `true|false`).
fn switch(
    flags: &HashMap<String, String>,
    name: &'static str,
    default: bool,
) -> Result<bool, CliError> {
    match flags.get(name).map(String::as_str) {
        None => Ok(default),
        Some("on") | Some("true") => Ok(true),
        Some("off") | Some("false") => Ok(false),
        Some(v) => Err(CliError::BadFlag {
            flag: name,
            message: format!("expected on or off, got {v:?}"),
        }),
    }
}

fn parse_seed(flags: &HashMap<String, String>) -> Result<u64, CliError> {
    flag(flags, "seed", "42")
        .parse()
        .map_err(|_| CliError::BadFlag {
            flag: "seed",
            message: "must be an unsigned integer".into(),
        })
}

/// The loaded dataset: graph plus train/valid/test.
struct Data {
    kg: KnowledgeGraph,
    train: Vec<Triple>,
    _valid: Vec<Triple>,
    test: Vec<Triple>,
}

fn load_data(flags: &HashMap<String, String>) -> Result<Data, CliError> {
    let seed = parse_seed(flags)?;
    if let Some(dir) = flags.get("data") {
        let bench = load_benchmark(&PathBuf::from(dir))
            .map_err(|e| CliError::Data(format!("loading {dir}: {e}")))?;
        return Ok(Data {
            kg: bench.graph,
            train: bench.train,
            _valid: bench.valid,
            test: bench.test,
        });
    }
    let name = flags
        .get("synthetic")
        .ok_or_else(|| CliError::Data("pass --data DIR or --synthetic NAME".into()))?;
    let generator = match name.as_str() {
        "fb15k" => datasets::fb15k_like().scale(0.05),
        "wn18" => datasets::wn18_like().scale(0.10),
        "freebase86m" => datasets::freebase86m_like().scale(0.01),
        other => {
            return Err(CliError::BadFlag {
                flag: "synthetic",
                message: format!("unknown dataset {other:?} (fb15k | wn18 | freebase86m)"),
            })
        }
    };
    let kg = generator.build(seed);
    let split = Split::ninety_five_five(&kg, seed);
    Ok(Data {
        kg,
        train: split.train,
        _valid: split.valid,
        test: split.test,
    })
}

fn parse_model(name: &str) -> Result<ModelKind, CliError> {
    Ok(match name.to_lowercase().as_str() {
        "transe" | "transe-l2" => ModelKind::TransEL2,
        "transe-l1" => ModelKind::TransEL1,
        "transh" => ModelKind::TransH,
        "transr" => ModelKind::TransR,
        "transd" => ModelKind::TransD,
        "distmult" => ModelKind::DistMult,
        "complex" => ModelKind::ComplEx,
        "rescal" => ModelKind::Rescal,
        "hole" => ModelKind::HolE,
        other => {
            return Err(CliError::BadFlag {
                flag: "model",
                message: format!("unknown model {other:?}"),
            })
        }
    })
}

fn parse_system(name: &str) -> Result<SystemKind, CliError> {
    Ok(match name.to_lowercase().as_str() {
        "hetkg-c" | "hetkg-cps" => SystemKind::HetKgCps,
        "hetkg-d" | "hetkg-dps" => SystemKind::HetKgDps,
        "dglke" | "dgl-ke" => SystemKind::DglKe,
        "pbg" => SystemKind::Pbg,
        other => {
            return Err(CliError::BadFlag {
                flag: "system",
                message: format!("unknown system {other:?} (hetkg-c | hetkg-d | dglke | pbg)"),
            })
        }
    })
}

/// Resolve `--fault-profile`: a named preset or a JSON [`FaultPlan`] file.
fn parse_fault_profile(value: &str, seed: u64) -> Result<Option<FaultPlan>, CliError> {
    match value {
        "none" => Ok(None),
        "lossy" => Ok(Some(FaultPlan::lossy(seed, 0.02))),
        "corrupt" => Ok(Some(FaultPlan::corrupting(seed, 0.01))),
        "outage" => Ok(Some(FaultPlan::shard_outage(seed, 1, 0.050, 0.150))),
        "overload" => Ok(Some(FaultPlan::overload(seed))),
        "chaos" => Ok(Some(FaultPlan::chaos(seed))),
        "failover" => Ok(Some(FaultPlan::failover(seed))),
        path => {
            let raw = std::fs::read_to_string(path).map_err(|e| CliError::BadFlag {
                flag: "fault-profile",
                message: format!(
                    "not a preset (none | lossy | outage | overload | chaos | failover) and reading {path:?} failed: {e}"
                ),
            })?;
            let plan: FaultPlan = serde_json::from_str(&raw).map_err(|e| CliError::BadFlag {
                flag: "fault-profile",
                message: format!("{path:?} is not a valid FaultPlan: {e}"),
            })?;
            Ok(Some(plan))
        }
    }
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), CliError> {
    check_flags("stats", flags, &[])?;
    let data = load_data(flags)?;
    let kg = &data.kg;
    println!(
        "entities {} | relations {} | triples {} (train {} / valid {} / test {})",
        kg.num_entities(),
        kg.num_relations(),
        kg.num_triples(),
        data.train.len(),
        data._valid.len(),
        data.test.len()
    );
    println!("avg entity degree {:.2}", kg.avg_degree());
    let mut counter = AccessCounter::new(kg.key_space());
    counter.record_batch(kg.triples());
    println!(
        "top-1% entity share {:.1}% | top-1% relation share {:.1}% | relation/entity heat {:.1}x",
        100.0 * counter.entity_top_share(0.01),
        100.0 * counter.relation_top_share(0.01),
        counter.heterogeneity_factor()
    );
    println!(
        "gini: entities {:.3}, relations {:.3}",
        het_kg::kgraph::stats::gini(&counter.counts()[..kg.num_entities()]),
        het_kg::kgraph::stats::gini(&counter.counts()[kg.num_entities()..])
    );
    Ok(())
}

fn cmd_partition(flags: &HashMap<String, String>) -> Result<(), CliError> {
    check_flags("partition", flags, &["parts"])?;
    let data = load_data(flags)?;
    let parts = positive(flags, "parts", 4)?;
    let seed = parse_seed(flags)?;
    println!("{:<12} {:>10} {:>9}", "partitioner", "edge cut", "balance");
    for (name, p) in [
        (
            "metis-like",
            MetisLike::new(seed).partition(&data.kg, parts),
        ),
        (
            "random",
            RandomPartitioner::new(seed).partition(&data.kg, parts),
        ),
    ] {
        println!(
            "{:<12} {:>9.1}% {:>9.2}",
            name,
            100.0 * quality::cut_fraction(&data.kg, &p),
            quality::balance(&p)
        );
    }
    Ok(())
}

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), CliError> {
    check_flags(
        "train",
        flags,
        &[
            "system",
            "model",
            "dim",
            "epochs",
            "machines",
            "out",
            "fault-profile",
            "checkpoint-every",
            "integrity",
            "checkpoint-dir",
            "max-restarts",
            "oracle",
            "no-overlap",
            "replication",
            "retry-budget",
            "breaker",
            "compress",
            "transport",
        ],
    )?;
    let data = load_data(flags)?;
    let mut cfg = TrainConfig::small(parse_system(flag(flags, "system", "hetkg-d"))?);
    cfg.model = parse_model(flag(flags, "model", "transe"))?;
    cfg.dim = positive(flags, "dim", 64)?;
    cfg.epochs = positive(flags, "epochs", 10)?;
    cfg.machines = positive(flags, "machines", 4)?;
    cfg.seed = parse_seed(flags)?;
    cfg.eval_candidates = None;
    let profile = flag(flags, "fault-profile", "none");
    cfg.faults = parse_fault_profile(profile, cfg.seed)?;
    // The failover profile permanently kills a primary, so it defaults
    // replication on; a kill with no backup to promote would abort the run.
    cfg.replication = match flags.get("replication") {
        Some(_) => positive(flags, "replication", 1)?,
        None if profile == "failover" => 2,
        None => 1,
    };
    if profile == "failover" && cfg.replication < 2 {
        return Err(CliError::BadFlag {
            flag: "replication",
            message: "the failover profile permanently kills a primary; it needs \
                      --replication 2 or more (a backup to promote)"
                .into(),
        });
    }
    // The overload profile simulates a flash crowd; without the budget and
    // breakers the client would retry-storm the saturated shard, so both
    // default on there (and off everywhere else).
    let overload_default = profile == "overload";
    cfg.retry_budget = switch(flags, "retry-budget", overload_default)?
        .then(het_kg::ps::RetryBudgetConfig::default);
    cfg.breaker =
        switch(flags, "breaker", overload_default)?.then(het_kg::ps::BreakerConfig::default);
    cfg.checkpoint_every = non_negative(flags, "checkpoint-every", 0)?;
    cfg.integrity = switch(flags, "integrity", true)?;
    cfg.checkpoint_dir = flags.get("checkpoint-dir").cloned();
    cfg.supervisor.max_restarts =
        non_negative(flags, "max-restarts", cfg.supervisor.max_restarts as usize)? as u32;
    cfg.overlap = !flags.contains_key("no-overlap");
    let compress = flag(flags, "compress", "off");
    cfg.compression =
        het_kg::netsim::CompressionMode::parse(compress).ok_or_else(|| CliError::BadFlag {
            flag: "compress",
            message: format!("unknown mode {compress:?} (off | int8 | int4 | topk | adaptive)"),
        })?;
    cfg.transport = match flag(flags, "transport", "sim") {
        "sim" => TransportKind::Sim,
        "tcp" => TransportKind::Tcp,
        "uds" => TransportKind::Uds,
        other => {
            return Err(CliError::BadFlag {
                flag: "transport",
                message: format!("unknown transport {other:?} (sim | tcp | uds)"),
            })
        }
    };
    if cfg.transport.is_socket() {
        // Fault injection, replication, and overload protection all live in
        // the simulated cluster; refusing the combination up front beats a
        // trainer assert.
        if cfg.faults.is_some() {
            return Err(CliError::BadFlag {
                flag: "transport",
                message: format!(
                    "fault injection is sim-only; drop --fault-profile or use --transport sim \
                     (got {})",
                    cfg.transport
                ),
            });
        }
        if cfg.replication > 1 {
            return Err(CliError::BadFlag {
                flag: "transport",
                message: "shard replication is sim-only; drop --replication or use --transport sim"
                    .into(),
            });
        }
        if cfg.retry_budget.is_some() || cfg.breaker.is_some() {
            return Err(CliError::BadFlag {
                flag: "transport",
                message: "overload protection is sim-only; drop --retry-budget/--breaker or use \
                          --transport sim"
                    .into(),
            });
        }
        let exe = std::env::current_exe().map_err(|e| CliError::BadFlag {
            flag: "transport",
            message: format!("cannot locate the hetkg binary to spawn ps-server shards: {e}"),
        })?;
        cfg.ps_server_bin = Some(exe.to_string_lossy().into_owned());
    }
    let oracle_on = switch(flags, "oracle", false)?;

    println!(
        "training {} / {} (d={}) on {} machines, {} epochs...",
        cfg.system, cfg.model, cfg.dim, cfg.machines, cfg.epochs
    );
    if let Some(plan) = &cfg.faults {
        let crashes = plan.crash_epochs();
        println!(
            "fault plan: drop {:.1}% | corrupt {:.1}% ({}) | {} outage window(s) | {} overload window(s) | {} straggler episode(s) | crashes {} | shard kills {}",
            100.0 * plan.drop_probability,
            100.0 * plan.corrupt_probability,
            if cfg.integrity { "checksums on" } else { "checksums OFF" },
            plan.outages.len(),
            plan.overloads.len(),
            plan.slow_episodes.len(),
            if crashes.is_empty() { "none".to_string() } else { format!("epochs {crashes:?}") },
            if plan.kills.is_empty() {
                "none".to_string()
            } else if cfg.replication > 1 {
                format!("{} (armed)", plan.kills.len())
            } else {
                format!("{} (masked: replication off)", plan.kills.len())
            },
        );
    }
    if cfg.retry_budget.is_some() || cfg.breaker.is_some() {
        println!(
            "overload protection: retry budget {} | breakers {}",
            if cfg.retry_budget.is_some() {
                "on"
            } else {
                "off"
            },
            if cfg.breaker.is_some() { "on" } else { "off" },
        );
    }
    if cfg.replication > 1 {
        println!(
            "replication: k={} ({} backup replica(s) per PS shard)",
            cfg.replication,
            cfg.replication - 1
        );
    }
    if cfg.transport.is_socket() {
        println!(
            "transport: {} (one ps-server process per shard)",
            cfg.transport
        );
    }
    let (report, store) = if oracle_on {
        let (verdict, store) = oracle::shadow_check_with_store(
            &data.kg,
            &data.train,
            &cfg,
            oracle::OracleConfig::default(),
        );
        println!(
            "oracle: {} | max per-key divergence {:.3e} (mean {:.3e}, bound {}) over {} keys | staleness ok: {}",
            if verdict.within_bound && verdict.staleness_ok { "PASS" } else { "FAIL" },
            verdict.max_divergence,
            verdict.mean_divergence,
            if verdict.exact { "exact".to_string() } else { format!("{:.3e}", verdict.bound) },
            verdict.keys_compared,
            verdict.staleness_ok,
        );
        (verdict.report, store)
    } else {
        trainer::train_with_store(&data.kg, &data.train, &[], &cfg)
    };
    for e in &report.epochs {
        println!(
            "epoch {:>3}: loss {:.4} | compute {:.2}s comm {:.2}s | cache hit {:.1}%",
            e.epoch,
            e.loss,
            e.compute_secs,
            e.comm_secs,
            100.0 * e.cache.hit_ratio()
        );
    }
    println!(
        "total {:.2}s simulated ({:.0}% communication), {:.1} MB moved",
        report.total_secs(),
        100.0 * report.comm_fraction(),
        report.total_traffic().total_bytes() as f64 / 1e6
    );
    if let Some(c) = &report.compression {
        println!(
            "compression: mode={} | push lane {:.1} KB raw -> {:.1} KB wire ({:.2}x) over {} rows in {} frames | {} residual folds | ladder +{}/-{}",
            c.mode,
            c.raw_bytes as f64 / 1e3,
            c.wire_bytes as f64 / 1e3,
            c.ratio(),
            c.rows,
            c.frames,
            c.residual_folds,
            c.level_ups,
            c.level_downs,
        );
    }
    let overlapped = report.total_overlap_secs();
    if overlapped > 0.0 {
        println!(
            "pipelining hid {:.2}s of communication behind compute ({:.2}s sequential -> {:.2}s critical path)",
            overlapped,
            report.total_compute_secs() + report.total_comm_secs(),
            report.total_secs(),
        );
    }
    if let Some(fr) = &report.faults {
        println!(
            "faults: {} drops ({} retries, {:.1} KB retransmitted) | {} outage refusals | {} slow messages (+{:.4}s latency, {:.4}s backoff)",
            fr.drops,
            fr.retries,
            fr.retransmitted_bytes as f64 / 1e3,
            fr.outage_refusals,
            fr.slow_messages,
            fr.extra_latency_secs,
            fr.backoff_secs,
        );
        println!(
            "degraded cache: {} stale hits, {} deferred pushes, {} backlog flushes | recovery: {} checkpoints, {} restarts",
            fr.degraded_hits, fr.deferred_pushes, fr.backlog_flushes, fr.checkpoints, fr.recoveries,
        );
        if fr.overload_sheds > 0
            || fr.overload_throttled > 0
            || fr.retries_denied > 0
            || fr.breaker_opens > 0
            || fr.breaker_fast_fails > 0
        {
            println!(
                "overload: {} sheds, {} throttled (+{:.4}s service latency) | retries denied: {}",
                fr.overload_sheds, fr.overload_throttled, fr.overload_extra_secs, fr.retries_denied,
            );
            println!(
                "breakers: {} open(s), {} half-open probe(s), {} close(s), {} fast-fail(s) | brownout: {} stale serves, {} shed pushes, {:.4}s browned out",
                fr.breaker_opens,
                fr.breaker_half_opens,
                fr.breaker_closes,
                fr.breaker_fast_fails,
                fr.brownout_stale_serves,
                fr.shed_pushes,
                fr.brownout_secs,
            );
        }
        if fr.corrupt_frames > 0 {
            println!(
                "integrity: {} corrupt frames injected | {} detected and re-pulled | {} silently ingested",
                fr.corrupt_frames, fr.corrupt_detected, fr.corrupt_ingested,
            );
        }
        if fr.promotions > 0 || fr.hedged_pulls > 0 {
            println!(
                "failover: {} promotion(s), {} catch-up record(s) ({:.1} KB replayed) | hedged pulls: {} issued, {} won, {} lost",
                fr.promotions,
                fr.catch_up_frames,
                fr.catch_up_bytes as f64 / 1e3,
                fr.hedged_pulls,
                fr.hedged_wins,
                fr.hedged_losses,
            );
        }
        let rep = report.total_traffic();
        if rep.replication_bytes > 0 {
            println!(
                "replication traffic: {:.1} KB in {} message(s) (own lane; excluded from worker byte totals)",
                rep.replication_bytes as f64 / 1e3,
                rep.replication_messages,
            );
        }
    }
    if let Some(sup) = &report.supervisor {
        println!(
            "supervisor: {} missed-heartbeat detections, {} restarts ({:.4}s backoff), {} torn checkpoint(s) skipped{}",
            sup.detections,
            sup.restarts,
            sup.restart_backoff_secs,
            sup.torn_checkpoints_skipped,
            if sup.gave_up { " — restart budget exhausted, run abandoned" } else { "" },
        );
    }

    let out = PathBuf::from(flag(flags, "out", "hetkg-model.bin"));
    let ck = trainer::checkpoint(&store, data.kg.key_space());
    ck.save(&out)
        .map_err(|e| CliError::Checkpoint(format!("saving checkpoint: {e}")))?;
    println!("checkpoint written to {}", out.display());
    Ok(())
}

/// Run one PS shard process: load the serialized [`ShardServerConfig`],
/// bind the requested listener, print the readiness handshake on stdout
/// (the spawning trainer blocks on it), then serve until a shutdown frame
/// arrives on the wire.
fn cmd_ps_server(flags: &HashMap<String, String>) -> Result<(), CliError> {
    check_flags("ps-server", flags, &["config", "shard", "listen"])?;
    let path = flags.get("config").ok_or(CliError::MissingFlag("config"))?;
    let raw = std::fs::read_to_string(path)
        .map_err(|e| CliError::Data(format!("reading shard config {path}: {e}")))?;
    let config: ShardServerConfig = serde_json::from_str(&raw)
        .map_err(|e| CliError::Data(format!("{path} is not a valid shard config: {e}")))?;
    let shard: usize = flags
        .get("shard")
        .ok_or(CliError::MissingFlag("shard"))?
        .parse()
        .map_err(|_| CliError::BadFlag {
            flag: "shard",
            message: "must be an unsigned integer".into(),
        })?;
    if shard >= config.num_shards {
        return Err(CliError::BadFlag {
            flag: "shard",
            message: format!(
                "shard {shard} out of range (config has {})",
                config.num_shards
            ),
        });
    }
    let listen = flags.get("listen").ok_or(CliError::MissingFlag("listen"))?;
    let listener = het_kg::ps::ShardListener::bind(listen)
        .map_err(|e| CliError::Data(format!("binding {listen}: {e}")))?;
    let spec = listener
        .local_spec()
        .map_err(|e| CliError::Data(format!("resolving listen address: {e}")))?;
    // The handshake line must hit the pipe before the trainer's read, so
    // flush past stdout's buffering explicitly.
    println!("{}{spec}", het_kg::ps::server::READY_PREFIX);
    std::io::Write::flush(&mut std::io::stdout())
        .map_err(|e| CliError::Data(format!("flushing readiness handshake: {e}")))?;
    het_kg::ps::serve(&config, shard, &listener)
        .map_err(|e| CliError::Data(format!("ps-server shard {shard}: {e}")))
}

fn cmd_eval(flags: &HashMap<String, String>) -> Result<(), CliError> {
    check_flags(
        "eval",
        flags,
        &["checkpoint", "model", "dim", "candidates", "eval-threads"],
    )?;
    let data = load_data(flags)?;
    let path = flags
        .get("checkpoint")
        .ok_or(CliError::MissingFlag("checkpoint"))?;
    let ck = Checkpoint::load(&PathBuf::from(path))
        .map_err(|e| CliError::Checkpoint(format!("loading checkpoint: {e}")))?;
    let model = parse_model(flag(flags, "model", "transe"))?;
    let dim = positive(flags, "dim", 64)?;
    let candidates = positive(flags, "candidates", 500)?;
    let model = model.build(dim);
    if ck.entities.dim() != model.entity_dim() || ck.relations.dim() != model.relation_dim() {
        return Err(CliError::Checkpoint(format!(
            "checkpoint widths (e{}, r{}) do not match {} at d={dim} (e{}, r{})",
            ck.entities.dim(),
            ck.relations.dim(),
            model.name(),
            model.entity_dim(),
            model.relation_dim()
        )));
    }
    let eval_threads = positive(flags, "eval-threads", 1)?;
    let snapshot = EmbeddingSnapshot::new(ck.entities, ck.relations);
    // Metrics are bit-identical for any thread count (ranks land in fixed
    // slots; aggregation replays them in protocol order on one thread).
    let breakdown = evaluate_breakdown_threaded(
        model.as_ref(),
        &snapshot,
        &data.test,
        data.kg.triples(),
        &EvalConfig {
            filtered: true,
            max_candidates: Some(candidates.min(data.kg.num_entities())),
            seed: 0,
        },
        eval_threads,
    );
    println!("overall:   {}", breakdown.overall);
    println!("head-side: {}", breakdown.head_side);
    println!("tail-side: {}", breakdown.tail_side);
    let hardest = breakdown.hardest_relations();
    println!("\nhardest relations (lowest MRR first):");
    for (r, mrr) in hardest.iter().take(5) {
        println!("  {r}: MRR {mrr:.3}");
    }
    Ok(())
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), CliError> {
    check_flags(
        "serve",
        flags,
        &[
            "checkpoint",
            "checkpoint-dir",
            "model",
            "dim",
            "shards",
            "threads",
            "queries",
            "warmup",
            "topk",
            "topk-share",
            "zipf",
            "cache-rows",
            "warm",
            "think-us",
            "reload-ms",
            "report",
        ],
    )?;
    let model = parse_model(flag(flags, "model", "transe"))?.build(positive(flags, "dim", 64)?);
    let dim = model.base_dim();
    let shards = positive(flags, "shards", 4)?;
    let snapshot = match (flags.get("checkpoint"), flags.get("checkpoint-dir")) {
        (Some(_), Some(_)) => {
            return Err(CliError::BadFlag {
                flag: "checkpoint",
                message: "pass either --checkpoint or --checkpoint-dir, not both".into(),
            })
        }
        (Some(path), None) => {
            let ck = Checkpoint::load(&PathBuf::from(path))
                .map_err(|e| CliError::Checkpoint(format!("loading checkpoint: {e}")))?;
            ServingSnapshot::from_checkpoint(&ck, 0, 0, shards)
        }
        (None, Some(dir)) => ServingSnapshot::load_latest(&PathBuf::from(dir), shards)
            .map_err(|e| CliError::Checkpoint(e.to_string()))?,
        (None, None) => return Err(CliError::MissingFlag("checkpoint")),
    };
    if snapshot.entities.dim() != model.entity_dim()
        || snapshot.relations.dim() != model.relation_dim()
    {
        return Err(CliError::Checkpoint(format!(
            "checkpoint widths (e{}, r{}) do not match {} at d={dim} (e{}, r{})",
            snapshot.entities.dim(),
            snapshot.relations.dim(),
            model.name(),
            model.entity_dim(),
            model.relation_dim()
        )));
    }
    let (entities, relations) = (snapshot.entities.rows(), snapshot.relations.rows());
    let (snap_seq, snap_epoch) = (snapshot.seq, snapshot.epoch);
    if entities == 0 || relations == 0 {
        return Err(CliError::Checkpoint(
            "checkpoint has no entities or no relations to serve".into(),
        ));
    }
    let cache_rows = non_negative(flags, "cache-rows", (entities / 4).max(8))?;
    let model_name = model.name();
    let cell = std::sync::Arc::new(SnapshotCell::new(snapshot));
    let engine = ServeEngine::new(cell.clone(), model, cache_rows)
        .map_err(|e| CliError::Checkpoint(e.to_string()))?;

    if switch(flags, "warm", false)? {
        // Pre-admit by *training-data* hotness — the same statistic the
        // training cache builds its hot set from. Needs the dataset.
        let data = load_data(flags)?;
        let mut counter = AccessCounter::new(data.kg.key_space());
        counter.record_batch(data.kg.triples());
        let counts = &counter.counts()[..data.kg.num_entities().min(entities)];
        let snap = engine.snapshot();
        engine.cache().warm(counts, snap.seq, |id| {
            snap.entities.row(id as usize).to_vec()
        });
        println!(
            "warmed {} rows from training-data hotness",
            engine.cache().admits()
        );
    }

    let reload_ms = non_negative(flags, "reload-ms", 0)?;
    let reloader = match (flags.get("checkpoint-dir"), reload_ms) {
        (Some(dir), ms) if ms > 0 => Some(SnapshotReloader::spawn(
            cell.clone(),
            PathBuf::from(dir),
            shards,
            std::time::Duration::from_millis(ms as u64),
        )),
        (None, ms) if ms > 0 => {
            return Err(CliError::BadFlag {
                flag: "reload-ms",
                message: "hot reload needs --checkpoint-dir (a manifest store to poll)".into(),
            })
        }
        _ => None,
    };

    let cfg = LoadGenConfig {
        threads: positive(flags, "threads", 2)?,
        queries_per_thread: positive(flags, "queries", 10_000)?,
        warmup_per_thread: non_negative(flags, "warmup", 2_000)?,
        topk_share: {
            let s = fraction(flags, "topk-share", 0.02)?;
            if s > 1.0 {
                return Err(CliError::BadFlag {
                    flag: "topk-share",
                    message: format!("must be in [0, 1], got {s}"),
                });
            }
            s
        },
        k: positive(flags, "topk", 10)?,
        zipf_exponent: fraction(flags, "zipf", 1.0)?,
        seed: parse_seed(flags)?,
        think_us: non_negative(flags, "think-us", 0)? as u64,
    };

    println!(
        "serving {model_name} d={dim}: {entities} entities, {relations} relations, \
         {shards} shard(s), cache {} rows (snapshot seq {snap_seq}, epoch {snap_epoch})",
        engine.cache().capacity(),
    );
    println!(
        "workload: zipf({}) | topk share {:.1}% (k={}) | {} thread(s) x {} queries \
         (+{} warmup) | think {}us",
        cfg.zipf_exponent,
        100.0 * cfg.topk_share,
        cfg.k,
        cfg.threads,
        cfg.queries_per_thread,
        cfg.warmup_per_thread,
        cfg.think_us,
    );

    let run = run_load(&engine, &cfg);

    println!(
        "qps {:.0} | queries {} | errors {} | wall {:.3}s",
        run.qps, run.queries, run.errors, run.wall_secs
    );
    println!(
        "latency us: p50 {:.1} | p95 {:.1} | p99 {:.1} | p99.9 {:.1} | max {:.1} | mean {:.1}",
        run.latency.p50_us,
        run.latency.p95_us,
        run.latency.p99_us,
        run.latency.p999_us,
        run.latency.max_us,
        run.latency.mean_us,
    );
    println!(
        "cache: hit rate {:.1}% ({} hits / {} accesses) | admits {}",
        100.0 * run.cache.hit_ratio(),
        run.cache.hits,
        run.cache.total(),
        engine.cache().admits(),
    );
    println!("digest {:016x}", run.digest);

    if let Some(r) = reloader {
        let reloads = r.stop();
        if reloads > 0 {
            println!(
                "hot-swapped {reloads} snapshot(s) mid-run (now at seq {})",
                engine.snapshot().seq
            );
        }
    }

    if let Some(path) = flags.get("report") {
        let report = ServeReport::new(
            model_name,
            dim,
            entities,
            relations,
            shards,
            snap_seq,
            snap_epoch,
            engine.cache().capacity(),
            &cfg,
            &run,
        );
        std::fs::write(path, report.to_json())
            .map_err(|e| CliError::Data(format!("writing report {path}: {e}")))?;
        println!("report written to {path}");
    }
    Ok(())
}

//! `hetkg` — the command-line face of the library.
//!
//! ```text
//! hetkg stats     (--data DIR | --synthetic NAME)
//! hetkg partition (--data DIR | --synthetic NAME) [--parts N]
//! hetkg train     (--data DIR | --synthetic NAME) [--system S] [--model M]
//!                 [--dim D] [--epochs E] [--machines N] [--out CK.bin]
//! hetkg eval      (--data DIR | --synthetic NAME) --checkpoint CK.bin
//!                 [--model M] [--dim D] [--candidates K]
//! ```
//!
//! `--data DIR` expects FB15k-format `train.txt`/`valid.txt`/`test.txt`;
//! `--synthetic NAME` is one of `fb15k`, `wn18`, `freebase86m` (harness
//! scale).

use het_kg::embed::checkpoint::Checkpoint;
use het_kg::eval::breakdown::evaluate_breakdown;
use het_kg::eval::link_prediction::EmbeddingSnapshot;
use het_kg::kgraph::io::load_benchmark;
use het_kg::kgraph::stats::AccessCounter;
use het_kg::train_sys::trainer;
use het_kg::partition::quality;
use het_kg::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::exit;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return;
    }
    let command = args.remove(0);
    let flags = parse_flags(&args);
    let result = match command.as_str() {
        "stats" => cmd_stats(&flags),
        "partition" => cmd_partition(&flags),
        "train" => cmd_train(&flags),
        "eval" => cmd_eval(&flags),
        other => Err(format!("unknown command {other:?}; try --help")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
}

fn usage() {
    println!("hetkg — knowledge graph embedding training with a hotness-aware cache\n");
    println!("commands:");
    println!("  stats      dataset statistics and access-frequency skew");
    println!("  partition  compare METIS-like vs random partitioning quality");
    println!("  train      distributed training (simulated cluster); saves a checkpoint");
    println!("  eval       filtered link prediction from a checkpoint, with breakdown\n");
    println!("data selection (all commands):");
    println!("  --data DIR        FB15k-format train.txt/valid.txt/test.txt");
    println!("  --synthetic NAME  fb15k | wn18 | freebase86m (harness scale)\n");
    println!("training flags:");
    println!("  --system S      hetkg-c | hetkg-d | dglke | pbg      (default hetkg-d)");
    println!("  --model M       transe | distmult | complex | ...    (default transe)");
    println!("  --dim D         embedding dimension                  (default 64)");
    println!("  --epochs E      training epochs                      (default 10)");
    println!("  --machines N    simulated machines                   (default 4)");
    println!("  --parts N       partitions for `partition`           (default 4)");
    println!("  --candidates K  eval candidate subsample             (default 500)");
    println!("  --out PATH      checkpoint output                    (default hetkg-model.bin)");
    println!("  --checkpoint P  checkpoint input for `eval`");
    println!("  --seed N        master seed                          (default 42)");
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            eprintln!("error: unexpected argument {arg:?}");
            exit(2);
        };
        let Some(value) = it.next() else {
            eprintln!("error: --{name} needs a value");
            exit(2);
        };
        flags.insert(name.to_string(), value.clone());
    }
    flags
}

fn flag<'a>(flags: &'a HashMap<String, String>, name: &str, default: &'a str) -> &'a str {
    flags.get(name).map(String::as_str).unwrap_or(default)
}

/// The loaded dataset: graph plus train/valid/test.
struct Data {
    kg: KnowledgeGraph,
    train: Vec<Triple>,
    _valid: Vec<Triple>,
    test: Vec<Triple>,
}

fn load_data(flags: &HashMap<String, String>) -> Result<Data, String> {
    let seed: u64 = flag(flags, "seed", "42").parse().map_err(|_| "--seed must be an integer")?;
    if let Some(dir) = flags.get("data") {
        let bench = load_benchmark(&PathBuf::from(dir))
            .map_err(|e| format!("loading {dir}: {e}"))?;
        return Ok(Data {
            kg: bench.graph,
            train: bench.train,
            _valid: bench.valid,
            test: bench.test,
        });
    }
    let name = flags
        .get("synthetic")
        .ok_or("pass --data DIR or --synthetic NAME")?;
    let generator = match name.as_str() {
        "fb15k" => datasets::fb15k_like().scale(0.05),
        "wn18" => datasets::wn18_like().scale(0.10),
        "freebase86m" => datasets::freebase86m_like().scale(0.01),
        other => return Err(format!("unknown synthetic dataset {other:?}")),
    };
    let kg = generator.build(seed);
    let split = Split::ninety_five_five(&kg, seed);
    Ok(Data { kg, train: split.train, _valid: split.valid, test: split.test })
}

fn parse_model(name: &str) -> Result<ModelKind, String> {
    Ok(match name.to_lowercase().as_str() {
        "transe" | "transe-l2" => ModelKind::TransEL2,
        "transe-l1" => ModelKind::TransEL1,
        "transh" => ModelKind::TransH,
        "transr" => ModelKind::TransR,
        "transd" => ModelKind::TransD,
        "distmult" => ModelKind::DistMult,
        "complex" => ModelKind::ComplEx,
        "rescal" => ModelKind::Rescal,
        "hole" => ModelKind::HolE,
        other => return Err(format!("unknown model {other:?}")),
    })
}

fn parse_system(name: &str) -> Result<SystemKind, String> {
    Ok(match name.to_lowercase().as_str() {
        "hetkg-c" | "hetkg-cps" => SystemKind::HetKgCps,
        "hetkg-d" | "hetkg-dps" => SystemKind::HetKgDps,
        "dglke" | "dgl-ke" => SystemKind::DglKe,
        "pbg" => SystemKind::Pbg,
        other => return Err(format!("unknown system {other:?}")),
    })
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let data = load_data(flags)?;
    let kg = &data.kg;
    println!(
        "entities {} | relations {} | triples {} (train {} / valid {} / test {})",
        kg.num_entities(),
        kg.num_relations(),
        kg.num_triples(),
        data.train.len(),
        data._valid.len(),
        data.test.len()
    );
    println!("avg entity degree {:.2}", kg.avg_degree());
    let mut counter = AccessCounter::new(kg.key_space());
    counter.record_batch(kg.triples());
    println!(
        "top-1% entity share {:.1}% | top-1% relation share {:.1}% | relation/entity heat {:.1}x",
        100.0 * counter.entity_top_share(0.01),
        100.0 * counter.relation_top_share(0.01),
        counter.heterogeneity_factor()
    );
    println!(
        "gini: entities {:.3}, relations {:.3}",
        het_kg::kgraph::stats::gini(&counter.counts()[..kg.num_entities()]),
        het_kg::kgraph::stats::gini(&counter.counts()[kg.num_entities()..])
    );
    Ok(())
}

fn cmd_partition(flags: &HashMap<String, String>) -> Result<(), String> {
    let data = load_data(flags)?;
    let parts: usize =
        flag(flags, "parts", "4").parse().map_err(|_| "--parts must be an integer")?;
    let seed: u64 = flag(flags, "seed", "42").parse().map_err(|_| "--seed must be an integer")?;
    println!("{:<12} {:>10} {:>9}", "partitioner", "edge cut", "balance");
    for (name, p) in [
        ("metis-like", MetisLike::new(seed).partition(&data.kg, parts)),
        ("random", RandomPartitioner::new(seed).partition(&data.kg, parts)),
    ] {
        println!(
            "{:<12} {:>9.1}% {:>9.2}",
            name,
            100.0 * quality::cut_fraction(&data.kg, &p),
            quality::balance(&p)
        );
    }
    Ok(())
}

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), String> {
    let data = load_data(flags)?;
    let mut cfg = TrainConfig::small(parse_system(flag(flags, "system", "hetkg-d"))?);
    cfg.model = parse_model(flag(flags, "model", "transe"))?;
    cfg.dim = flag(flags, "dim", "64").parse().map_err(|_| "--dim must be an integer")?;
    cfg.epochs =
        flag(flags, "epochs", "10").parse().map_err(|_| "--epochs must be an integer")?;
    cfg.machines =
        flag(flags, "machines", "4").parse().map_err(|_| "--machines must be an integer")?;
    cfg.seed = flag(flags, "seed", "42").parse().map_err(|_| "--seed must be an integer")?;
    cfg.eval_candidates = None;

    println!(
        "training {} / {} (d={}) on {} machines, {} epochs...",
        cfg.system, cfg.model, cfg.dim, cfg.machines, cfg.epochs
    );
    let (report, store) = trainer::train_with_store(&data.kg, &data.train, &[], &cfg);
    for e in &report.epochs {
        println!(
            "epoch {:>3}: loss {:.4} | compute {:.2}s comm {:.2}s | cache hit {:.1}%",
            e.epoch,
            e.loss,
            e.compute_secs,
            e.comm_secs,
            100.0 * e.cache.hit_ratio()
        );
    }
    println!(
        "total {:.2}s simulated ({:.0}% communication), {:.1} MB moved",
        report.total_secs(),
        100.0 * report.comm_fraction(),
        report.total_traffic().total_bytes() as f64 / 1e6
    );

    let out = PathBuf::from(flag(flags, "out", "hetkg-model.bin"));
    let ck = trainer::checkpoint(&store, data.kg.key_space());
    ck.save(&out).map_err(|e| format!("saving checkpoint: {e}"))?;
    println!("checkpoint written to {}", out.display());
    Ok(())
}

fn cmd_eval(flags: &HashMap<String, String>) -> Result<(), String> {
    let data = load_data(flags)?;
    let path = flags.get("checkpoint").ok_or("--checkpoint is required for eval")?;
    let ck = Checkpoint::load(&PathBuf::from(path))
        .map_err(|e| format!("loading checkpoint: {e}"))?;
    let model = parse_model(flag(flags, "model", "transe"))?;
    let dim: usize =
        flag(flags, "dim", "64").parse().map_err(|_| "--dim must be an integer")?;
    let candidates: usize =
        flag(flags, "candidates", "500").parse().map_err(|_| "--candidates must be an integer")?;
    let model = model.build(dim);
    if ck.entities.dim() != model.entity_dim() || ck.relations.dim() != model.relation_dim() {
        return Err(format!(
            "checkpoint widths (e{}, r{}) do not match {} at d={dim} (e{}, r{})",
            ck.entities.dim(),
            ck.relations.dim(),
            model.name(),
            model.entity_dim(),
            model.relation_dim()
        ));
    }
    let snapshot = EmbeddingSnapshot::new(ck.entities, ck.relations);
    let breakdown = evaluate_breakdown(
        model.as_ref(),
        &snapshot,
        &data.test,
        data.kg.triples(),
        &EvalConfig {
            filtered: true,
            max_candidates: Some(candidates.min(data.kg.num_entities())),
            seed: 0,
        },
    );
    println!("overall:   {}", breakdown.overall);
    println!("head-side: {}", breakdown.head_side);
    println!("tail-side: {}", breakdown.tail_side);
    let hardest = breakdown.hardest_relations();
    println!("\nhardest relations (lowest MRR first):");
    for (r, mrr) in hardest.iter().take(5) {
        println!("  {r}: MRR {mrr:.3}");
    }
    Ok(())
}

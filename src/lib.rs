//! # HET-KG
//!
//! A from-scratch Rust reproduction of **HET-KG: Communication-Efficient
//! Knowledge Graph Embedding Training via Hotness-Aware Cache** (ICDE 2022).
//!
//! HET-KG trains knowledge-graph embeddings on a parameter-server cluster
//! and cuts communication by keeping a *hot-embedding table* on every
//! worker: the most frequently accessed entity/relation embeddings are
//! selected by a prefetch+filter pipeline and refreshed under a bounded-
//! staleness protocol.
//!
//! This crate is the umbrella: it re-exports the workspace's crates as
//! modules and provides a prelude. See the README for architecture and the
//! `examples/` directory for runnable entry points.
//!
//! ## Quickstart
//!
//! ```
//! use het_kg::prelude::*;
//!
//! // 1. A skewed synthetic graph (FB15k-shaped, scaled down).
//! let kg = datasets::fb15k_like().scale(0.02).build(42);
//! let split = Split::ninety_five_five(&kg, 42);
//!
//! // 2. Train HET-KG with the dynamic (DPS) cache for a couple of epochs.
//! let mut cfg = TrainConfig::small(SystemKind::HetKgDps);
//! cfg.epochs = 2;
//! let report = train(&kg, &split.train, &[], &cfg);
//!
//! // 3. The cache served hits and the run produced a loss trajectory.
//! assert!(report.total_cache().hit_ratio() > 0.0);
//! assert_eq!(report.epochs.len(), 2);
//! ```

/// Knowledge-graph data model, loaders, and synthetic generators.
pub use hetkg_kgraph as kgraph;

/// Graph partitioning (METIS-like multilevel min-cut, random baseline).
pub use hetkg_partition as partition;

/// Embedding storage, KGE models with analytic gradients, losses, sampling.
pub use hetkg_embed as embed;

/// Deterministic network cost model and traffic metering.
pub use hetkg_netsim as netsim;

/// Sharded parameter server with server-side optimizers.
pub use hetkg_ps as ps;

/// The contribution: hotness-aware cache (prefetch, filter, CPS/DPS,
/// bounded-staleness sync) and baseline caches.
pub use hetkg_core as hotcache;

/// Distributed training engine: HET-KG-C/D, DGL-KE-sim, PBG-sim.
pub use hetkg_train as train_sys;

/// Link-prediction evaluation (MRR / MR / Hits@k, filtered).
pub use hetkg_eval as eval;

/// Online serving: sharded snapshots, hot-row admission cache, batched
/// top-k, and the closed-loop load generator.
pub use hetkg_serve as serve;

/// The most common imports in one place.
pub mod prelude {
    pub use hetkg_core::filter::FilterConfig;
    pub use hetkg_core::policy::{CachePolicy, PolicyKind};
    pub use hetkg_core::sync::SyncConfig;
    pub use hetkg_core::table::HotEmbeddingTable;
    pub use hetkg_embed::loss::LossKind;
    pub use hetkg_embed::manifest::CheckpointStore;
    pub use hetkg_embed::negative::{NegConfig, NegStrategy};
    pub use hetkg_embed::ModelKind;
    pub use hetkg_eval::link_prediction::{evaluate, EvalConfig};
    pub use hetkg_eval::RankMetrics;
    pub use hetkg_kgraph::generator::SyntheticKg;
    pub use hetkg_kgraph::split::Split;
    pub use hetkg_kgraph::{
        datasets, EntityId, KeySpace, KnowledgeGraph, ParamKey, RelationId, Triple,
    };
    pub use hetkg_netsim::{
        ClusterTopology, CompressionMode, CostModel, CrashPoint, FaultPlan, OutageWindow,
        ShardKill, ShardLiveness, SlowEpisode, WireFrame,
    };
    pub use hetkg_partition::{MetisLike, Partitioner, RandomPartitioner};
    pub use hetkg_ps::optimizer::OptimizerKind;
    pub use hetkg_ps::RetryPolicy;
    pub use hetkg_serve::{
        run_load, LoadGenConfig, ServeEngine, ServeReport, ServingSnapshot, SnapshotCell,
        SnapshotReloader,
    };
    pub use hetkg_train::config::CacheConfig;
    pub use hetkg_train::trainer::snapshot;
    pub use hetkg_train::{
        shadow_check, train, FaultReport, OracleConfig, OracleReport, SupervisorConfig,
        SupervisorReport, SystemKind, TrainConfig, TrainReport, TransportKind,
    };
}

#!/usr/bin/env sh
# Benchmark push-path gradient compression: train the 4-shard workload
# under each compression mode and write the result to
# BENCH_compression.json (per mode: metered push-lane bytes raw vs wire,
# compression ratio, comm time, and codec counters).
set -eu

cd "$(dirname "$0")/.."

OUT=BENCH_compression.json
cargo run --release --example compression_gain > "$OUT"
echo "wrote $OUT" >&2

#!/usr/bin/env sh
# Benchmark the serving read path and write BENCH_serving.json:
#   - blocked top-k kernels vs the per-candidate scalar path (equal
#     results asserted; speedup reported),
#   - hot-row cache hit rate under Zipf(1.0) at a 25%-of-table budget,
#   - closed-loop QPS at 1/2/4/8 worker threads with client think time.
#
# Optionally pass --criterion to also run the wall-clock Criterion bench
# (`cargo bench -p hetkg-bench --bench serving`).
set -eu

cd "$(dirname "$0")/.."

OUT=BENCH_serving.json
cargo run --release --example serving_gain > "$OUT"
echo "wrote $OUT" >&2

# Distill the headline numbers into an experiment record so
# `scripts/gen_experiments_md.py` can fold serving into EXPERIMENTS.md.
python3 - "$OUT" <<'EOF'
import json, sys

d = json.load(open(sys.argv[1]))
w = d["workload"]
rows = [[f"{k['model']} blocked vs scalar top-k", f"{k['speedup']:.2f}x",
         "results bit-identical" if k["results_identical"] else "RESULTS DIVERGED"]
        for k in d["topk_kernels"]]
cache = d["hot_cache"]
rows.append(["hot-cache hit rate",
             f"{100 * cache['hit_rate']:.1f}%",
             f"{100 * cache['capacity_fraction']:.0f}% budget"])
rows.append(["QPS scaling 1 -> 4 threads", f"{d['scaling_1_to_4']:.2f}x",
             f"host parallelism {w['host_parallelism']}"])
rec = {
    "id": "serving",
    "title": "High-QPS serving: blocked top-k, hot-row cache, thread scaling",
    "params": f"{w['entities']} entities / {w['relations']} relations, d={w['dim']}, "
              f"Zipf(1.0), seed {w['seed']}",
    "columns": ["measurement", "value", "notes"],
    "rows": rows,
    "shape_expectation": "blocked top-k beats per-triple scalar scoring at equal "
                         "(asserted bit-identical) results, the admission cache "
                         "captures most of a Zipf(1.0) stream with a 25% budget, "
                         "and closed-loop QPS scales superlinearly in clients "
                         "while think time dominates",
}
json.dump(rec, open("experiments/serving.json", "w"), indent=2)
print("wrote experiments/serving.json", file=sys.stderr)
EOF

if [ "${1:-}" = "--criterion" ]; then
    cargo bench -p hetkg-bench --bench serving
fi

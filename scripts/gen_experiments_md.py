#!/usr/bin/env python3
"""Generate EXPERIMENTS.md from experiments/*.json + the paper's numbers.

Run `cargo run --release -p hetkg-bench --bin repro -- all` first, then
`python3 scripts/gen_experiments_md.py`.
"""

import json
import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent
EXP = ROOT / "experiments"

# What the paper reports, quoted for side-by-side comparison.
PAPER = {
    "table1": (
        "Table I (described in §I/§III-B): with TransE on Freebase-86m, network "
        "communication dominates more than 70% of end-to-end DGL-KE training time "
        "on the 4-machine, 1 Gbps testbed."
    ),
    "fig2": (
        "Fig. 2 (§III-C, §IV-B): embedding accesses are heavily skewed; on FB15k the "
        "top 1% of entities account for ~6% of embedding usage and the top 1% of "
        "relations for ~36%; relations are hotter per key than entities on every dataset."
    ),
    "table3": (
        "Table III (FB15k, 30 epochs, d=400): TransE — PBG MRR .582 / 1047.4 s; DGL-KE "
        ".570 / 483.7 s; HET-KG-C .569 / 465.9 s; HET-KG-D .564 / 418.6 s. DistMult — "
        "PBG .681 / 1147.0 s; DGL-KE .673 / 1167.2 s; HET-KG-C .642 / 731.9 s; "
        "HET-KG-D .662 / 742.1 s."
    ),
    "table4": (
        "Table IV (WN18, 60 epochs): TransE — PBG .722 / 477.4 s; DGL-KE .715 / 184.3 s; "
        "HET-KG-C .720 / 163.0 s; HET-KG-D .719 / 167.7 s. DistMult — PBG .889 / 1177.6 s; "
        "DGL-KE .881 / 258.3 s; HET-KG-C .877 / 252.1 s; HET-KG-D .885 / 251.4 s."
    ),
    "table5": (
        "Table V (Freebase-86m, TransE, 10 epochs): PBG .669 / 1125.7 min; DGL-KE .671 / "
        "312.9 min; HET-KG-C .678 / 312.7 min; HET-KG-D .677 / 305.2 min."
    ),
    "fig5": (
        "Fig. 5: all systems converge to similar accuracy; HET-KG needs less time to any "
        "given MRR; HET-KG-D is best on Freebase-86m."
    ),
    "fig6": (
        "Fig. 6 (Freebase-86m): PBG has limited scalability; DGL-KE and HET-KG speed up "
        "with workers, HET-KG's average acceleration ratio ~30% above DGL-KE's."
    ),
    "fig7": (
        "Fig. 7: DGL-KE and HET-KG have similar computation time; HET-KG's communication "
        "time is lower; PBG's communication far exceeds the others (dense relation "
        "weights)."
    ),
    "fig8a": (
        "Fig. 8a (Freebase-86m): cache hit ratio rises with cache size; MRR does not "
        "change significantly."
    ),
    "fig8b": (
        "Fig. 8b: MRR unaffected up to staleness P≈8 and decreases beyond; hit ratio "
        "(communication saving) improves as P grows."
    ),
    "fig8c": (
        "Fig. 8c: hit ratio rises then falls with the entity ratio, peaking at 25% "
        "entities / 75% relations."
    ),
    "fig9": (
        "Fig. 9 (epoch-MRR): staleness 1 reaches MRR 0.67; staleness 128 only 0.59 — "
        "consistency matters for convergence."
    ),
    "table6": (
        "Table VI (hit ratio, %): FB15k — FIFO 7.4, LRU 11.7, importance 15.2, HET-KG "
        "25.2; WN18 — 16.5, 17.6, 32.1, 35.5; Freebase-86m — 6.6, 8.6, 34.3, 43.1."
    ),
    "table7": (
        "Table VII (30 epochs): FB15k — HET-KG MRR .343 / 236.8 s vs HET-KG-N .304 / "
        "227.2 s; WN18 — HET-KG .629 / 86.0 s vs HET-KG-N .606 / 77.1 s: dropping the "
        "heterogeneity split is slightly faster but less accurate."
    ),
    "partition-ablation": (
        "§V Graph Partitioning: 'Compared with random partitioning, METIS significantly "
        "reduces the network communication for pulling entity embeddings across machines.'"
    ),
    "negsample-ablation": (
        "§V Negative Sampling: batched corruption reduces sampling complexity from "
        "O(b·d·(n+1)) to O(b·d + b·k·d/b_c)."
    ),
    "divergence": (
        "§IV-C: the inconsistency between cached hot-embeddings and global embeddings is "
        "bounded by the staleness threshold; larger bounds admit more divergence (no "
        "figure — this is the empirical form of the convergence analysis)."
    ),
    "bandwidth-sweep": (
        "§II Remarks: PS communication 'will become expensive with the increase of "
        "number of workers, especially in a low bandwidth network environment' — the "
        "cache's benefit should grow as bandwidth shrinks (no figure; motivating claim)."
    ),
}

ORDER = [
    "table1", "fig2", "table3", "table4", "table5", "fig5", "fig6", "fig7",
    "fig8a", "fig8b", "fig8c", "fig9", "table6", "table7",
    "partition-ablation", "negsample-ablation", "divergence", "bandwidth-sweep",
]


def render_table(columns, rows):
    widths = [len(c) for c in columns]
    for row in rows:
        for i, cell in enumerate(row[: len(columns)]):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"
    lines = [fmt(columns), "|" + "|".join("-" * (w + 2) for w in widths) + "|"]
    lines += [fmt(r) for r in rows]
    return "\n".join(lines)


def main():
    out = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Every table and figure of *HET-KG* (ICDE 2022) regenerated by this",
        "repository's harness (`cargo run --release -p hetkg-bench --bin repro -- all`).",
        "",
        "Absolute numbers are **not** expected to match the paper: the testbed is a",
        "deterministic simulator (metered traffic under a 1 Gbps cost model, modeled",
        "compute), the datasets are synthetic generators matched to the published",
        "statistics at harness scale, and training runs far fewer epochs at smaller",
        "dimension. What reproduces is the **shape**: who wins, by roughly what factor,",
        "and where the crossovers fall. Each section quotes the paper's numbers, shows",
        "ours, and states the shape check.",
        "",
        "Regenerate this file with `python3 scripts/gen_experiments_md.py` after a",
        "harness run.",
        "",
    ]
    missing = []
    for exp_id in ORDER:
        path = EXP / f"{exp_id}.json"
        if not path.exists():
            missing.append(exp_id)
            continue
        rec = json.loads(path.read_text())
        out.append(f"## {rec['id']} — {rec['title']}")
        out.append("")
        if rec.get("params"):
            out.append(f"*Setup:* {rec['params']}")
            out.append("")
        out.append(f"**Paper:** {PAPER.get(exp_id, '(no direct quote)')}")
        out.append("")
        out.append("**Measured:**")
        out.append("")
        out.append(render_table(rec["columns"], rec["rows"]))
        out.append("")
        out.append(f"**Shape check:** {rec['shape_expectation']}")
        out.append("")
    if missing:
        out.append(f"*Missing records (run `repro all`):* {', '.join(missing)}")
        out.append("")
    (ROOT / "EXPERIMENTS.md").write_text("\n".join(out))
    print(f"wrote EXPERIMENTS.md ({len(ORDER) - len(missing)} experiments)")


if __name__ == "__main__":
    main()

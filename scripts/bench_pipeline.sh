#!/usr/bin/env sh
# Benchmark the iteration pipeline: run the pipelined-vs-sequential
# comparison on the 4-shard workload and write the result to
# BENCH_pipeline.json (per system: epoch simulated time, compute/comm
# split, and the fraction of the sequential sum hidden by overlap).
#
# Optionally pass --criterion to also run the wall-clock Criterion bench
# (`cargo bench -p hetkg-bench --bench pipeline`), which measures the
# implementation cost of the pipeline rather than its simulated-time gain.
set -eu

cd "$(dirname "$0")/.."

OUT=BENCH_pipeline.json
cargo run --release --example pipeline_gain > "$OUT"
echo "wrote $OUT" >&2

if [ "${1:-}" = "--criterion" ]; then
    cargo bench -p hetkg-bench --bench pipeline
fi
